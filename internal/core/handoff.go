package core

import (
	"io"
	"net/netip"
	"time"

	"repro/internal/cmap"
	"repro/internal/snapshot"
)

// IPHash exposes the correlator's shared IP-key hash for cluster placement.
// Every consumer of binary IP keys — lane selection, store splits, shard
// probing, and now consistent-hash ring ownership — must use this one hash,
// which is what makes "the router's node choice" and "the worker's store
// placement" the same function of the same bytes.
func IPHash(key *[16]byte) uint32 { return ipHash(key) }

// IPHashAddr is IPHash over an address's canonical 16-byte form.
func IPHashAddr(addr netip.Addr) uint32 {
	a16 := addr.As16()
	return ipHash(&a16)
}

// WriteSnapshotOwned streams a range-filtered checkpoint to w: exactly the
// IP-NAME entries whose key hash satisfies owns, plus the complete
// NAME-CNAME family. The output is a normal snapshot file — Restore (and
// therefore a live handoff import) applies it with placement recomputed,
// so the exporting and importing nodes may run different lane/split
// layouts. CNAME chains are shipped whole because the forwarder broadcasts
// CNAME records to every node: each worker walks chains locally, so chain
// state must be complete everywhere, while IP-NAME entries are owned by
// exactly one node. Like WriteSnapshot this is safe on a running
// correlator (shard-at-a-time read locks; fuzzy snapshot semantics).
// It returns the number of entries written.
func (c *Correlator) WriteSnapshotOwned(w io.Writer, created int64, owns func(h uint32) bool) (int, error) {
	sw, err := snapshot.NewWriter(w, created)
	if err != nil {
		return 0, err
	}
	n, err := c.ipName.writeSectionsOwned(sw, familyIPName, owns)
	if err != nil {
		return n, err
	}
	m, err := c.nameCname.writeSectionsOwned(sw, familyNameCname, nil)
	n += m
	if err != nil {
		return n, err
	}
	return n, sw.Close()
}

// writeSectionsOwned is writeSections with an ownership filter: binary
// 16-byte keys are kept only when owns(ipHash(key)) is true. A nil owns
// keeps everything. String-keyed entries are always kept — they are not
// addressable by the IP-key hash the ring partitions on, and (like the
// NAME-CNAME family) they are replicated rather than sharded across nodes.
// AppendShard returns items with a zero Hash, so the filter recomputes the
// shared hash from the key bytes.
func (s *store) writeSectionsOwned(w *snapshot.Writer, family uint8, owns func(h uint32) bool) (int, error) {
	gens := [...]struct {
		code uint8
		maps []*cmap.Map
	}{
		{genActive, s.active},
		{genInactive, s.inactive},
		{genLong, s.long},
	}
	written := 0
	var items []cmap.Item
	for _, gen := range gens {
		for split, m := range gen.maps {
			if m.Empty() {
				continue
			}
			for _, space := range [...]cmap.KeySpace{cmap.Binary, cmap.Strings} {
				var flags uint8
				if space == cmap.Binary {
					flags = snapshot.SectionFlagBinaryKeys
				}
				if err := w.Begin(family, gen.code, flags, uint32(split)); err != nil {
					return written, err
				}
				for sh := 0; sh < m.ShardCount(); sh++ {
					items = m.AppendShard(sh, space, items[:0])
					for i := range items {
						if owns != nil && space == cmap.Binary && len(items[i].Key) == 16 {
							k := [16]byte(items[i].Key)
							if !owns(ipHash(&k)) {
								continue
							}
						}
						if err := w.Entry(items[i].Key, items[i].Value, items[i].Exp); err != nil {
							return written, err
						}
						written++
					}
				}
			}
		}
	}
	return written, nil
}

// DropOwned removes every IP-NAME entry whose key hash satisfies owns,
// across all generations and splits, returning the number removed. It is
// the drain half of a shard handoff: after the new owner confirms the
// imported range, the old owner drops it so a later lookup misses locally
// instead of answering from a stale replica. The NAME-CNAME family is
// never dropped (it is replicated, not sharded). Safe on a running
// correlator — removal write-locks one shard at a time, and a fill racing
// the drain simply re-asserts the entry, which the next ring change
// drains again.
func (c *Correlator) DropOwned(owns func(h uint32) bool) int {
	dropped := 0
	for _, gen := range [...][]*cmap.Map{c.ipName.active, c.ipName.inactive, c.ipName.long} {
		for _, m := range gen {
			if m.Empty() {
				continue
			}
			dropped += m.RemoveIf(func(key, _ string, _ int64) bool {
				if len(key) != 16 {
					return false
				}
				var k [16]byte
				copy(k[:], key)
				return owns(ipHash(&k))
			})
		}
	}
	return dropped
}

// ImportSnapshot applies a snapshot stream to a running correlator — the
// receive half of a shard handoff. It is Restore with live semantics made
// explicit: every underlying operation (cmap inserts, interning, split
// placement) is concurrency-safe, so importing while the fill and lookup
// workers run only ever adds warmth. Entries already expired at now are
// dropped at the door, exactly as in a boot-time restore.
func (c *Correlator) ImportSnapshot(r io.Reader, now time.Time) (RestoreStats, error) {
	return c.Restore(r, now)
}
