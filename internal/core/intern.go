package core

import (
	"maps"
	"sync"
	"sync/atomic"
)

// defaultInternCap bounds one interner's table. ISP resolver traffic is
// heavy-tailed: a small set of CDN/service names covers almost all answer
// records, so a six-figure table holds the working set with room to spare
// while bounding the worst case (uncacheable random-label floods).
const defaultInternCap = 1 << 17

// internPromoteMin is the smallest delta size that triggers promotion into
// the frozen table.
const internPromoteMin = 64

// interner deduplicates the query/answer name strings the FillUp stage
// stores. Millions of IP-NAME entries point at the same few thousand
// CDN/service names; without interning every ingested record keeps its own
// decoder-allocated copy alive in the store, so the heap carries one string
// per entry instead of one per distinct name. Interning makes every entry
// for the same name share one backing string: the per-record decode copy
// dies young (cheap, collected in the next minor GC) and the store's
// retained bytes shrink by the duplication factor — the StoreSizes/heap
// win the fill-path redesign targets.
//
// The layout is read-mostly, mirroring the traffic: a frozen map reached
// through an atomic pointer serves the steady state — one pointer load and
// one probe, no lock, no shared-cache-line writes — while a small locked
// delta map absorbs new names and is periodically promoted (merged into a
// fresh frozen map). The table is a cache, not a registry: when it reaches
// capacity it resets and rebuilds from live traffic. Entries already
// stored keep their strings (the store's map values hold them live); only
// future sharing restarts from empty. Each fill lane owns one interner, so
// cross-lane duplication is bounded by the lane count.
type interner struct {
	frozen atomic.Pointer[map[string]string]

	mu    sync.Mutex
	delta map[string]string
	cap   int
}

func newInterner(capacity int) *interner {
	if capacity < 1 {
		capacity = defaultInternCap
	}
	in := &interner{delta: make(map[string]string, internPromoteMin), cap: capacity}
	frozen := make(map[string]string)
	in.frozen.Store(&frozen)
	return in
}

// intern returns the canonical copy of s, installing s itself when the
// name is new. The steady-state hit is one lock-free probe of the frozen
// table — no allocation, no atomic read-modify-write.
func (in *interner) intern(s string) string {
	if s == "" {
		return s
	}
	frozen := *in.frozen.Load()
	if v, ok := frozen[s]; ok {
		return v
	}
	in.mu.Lock()
	if v, ok := in.delta[s]; ok {
		in.mu.Unlock()
		return v
	}
	in.delta[s] = s
	if total := len(frozen) + len(in.delta); total > in.cap {
		// Full: reset both tables and rebuild from live traffic.
		empty := make(map[string]string)
		in.frozen.Store(&empty)
		in.delta = make(map[string]string, internPromoteMin)
	} else if len(in.delta) >= internPromoteMin && len(in.delta) >= len(frozen)/4 {
		// Promote: merge the delta into a fresh frozen table. The growth
		// threshold is geometric, so promotion cost amortizes to O(1) per
		// distinct name.
		next := make(map[string]string, total)
		maps.Copy(next, frozen)
		maps.Copy(next, in.delta)
		in.frozen.Store(&next)
		in.delta = make(map[string]string, internPromoteMin)
	}
	in.mu.Unlock()
	return s
}

// size reports the current table population (test/metrics hook).
func (in *interner) size() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(*in.frozen.Load()) + len(in.delta)
}
