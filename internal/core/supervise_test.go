package core

import (
	"context"
	"errors"
	"net/netip"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dnswire"
	"repro/internal/fault"
	"repro/internal/netflow"
	"repro/internal/stream"
)

// superviseConfig is a small deterministic pipeline: one lane per stage so
// batches are not partitioned, and a fast restart backoff so supervised
// restarts do not slow tests down.
func superviseConfig() Config {
	return Config{
		Lanes: 1, FillLanes: 1,
		FillUpWorkers: 1, LookUpWorkers: 1, WriteWorkers: 1,
		RestartBackoffMin: time.Millisecond,
		RestartBackoffMax: 2 * time.Millisecond,
	}
}

func superviseDNS(i int) stream.DNSRecord {
	return stream.DNSRecord{
		Timestamp: time.Now(),
		Query:     "svc.example.",
		RType:     dnswire.TypeA,
		TTL:       300,
		Addr:      netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i)}),
	}
}

func superviseFlow(i int) netflow.FlowRecord {
	return netflow.FlowRecord{
		Timestamp: time.Now(),
		SrcIP:     netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i)}),
		DstIP:     netip.AddrFrom4([4]byte{192, 0, 2, 1}),
		Packets:   1, Bytes: 100,
	}
}

func runPipeline(t *testing.T, c *Correlator, feed func()) error {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- c.Run(ctx) }()
	feed()
	cancel()
	select {
	case err := <-done:
		return err
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return")
		return nil
	}
}

func supStatus(st Stats, name string) SupervisedStatus {
	for _, s := range st.Supervised {
		if s.Name == name {
			return s
		}
	}
	return SupervisedStatus{}
}

// TestFillPoisonContainment proves a panicking DNS record costs exactly
// itself: the batch retries record-at-a-time, healthy records are filled
// and counted once, and the process survives with exact counters.
func TestFillPoisonContainment(t *testing.T) {
	defer fault.DisableAll()
	const n = 10
	c := New(superviseConfig())
	if err := fault.Enable("core.fill.record", "2*panic(poisoned dns record)"); err != nil {
		t.Fatal(err)
	}
	err := runPipeline(t, c, func() {
		recs := make([]stream.DNSRecord, 0, n)
		for i := 0; i < n; i++ {
			recs = append(recs, superviseDNS(i))
		}
		if got := c.OfferDNSBatch(recs); got != n {
			t.Errorf("offered %d of %d", got, n)
		}
		// Wait for the fill queue to drain so the panic happens before the
		// drain path.
		deadline := time.After(5 * time.Second)
		for {
			if f, _, _ := c.QueueDepths(); f == 0 {
				break
			}
			select {
			case <-deadline:
				t.Error("fill queue never drained")
				return
			case <-time.After(time.Millisecond):
			}
		}
	})
	if err != nil {
		t.Fatalf("Run = %v", err)
	}
	st := c.Stats()
	// Budget 2: the whole-batch attempt panics once, the per-record retry
	// panics once more on the same (first) record, which is dropped.
	if st.Poisoned != 1 {
		t.Fatalf("Poisoned = %d, want 1", st.Poisoned)
	}
	if st.DNSRecords != n-1 {
		t.Fatalf("DNSRecords = %d, want %d (no double count on retry)", st.DNSRecords, n-1)
	}
	fill := supStatus(st, "fill")
	if fill.Panics != 2 || st.Panics != 2 {
		t.Fatalf("fill panics = %d (total %d), want 2", fill.Panics, st.Panics)
	}
	if ip, _ := c.StoreSizes(); ip != n-1 {
		t.Fatalf("store entries = %d, want %d", ip, n-1)
	}
}

// TestLookPoisonContainment proves a panicking flow drops only its own
// output slot: the rest of the batch reaches the sink.
func TestLookPoisonContainment(t *testing.T) {
	defer fault.DisableAll()
	const n = 8
	var written atomic.Uint64
	sink := SinkFunc(func(cf CorrelatedFlow) { written.Add(1) })
	c := New(superviseConfig(), WithSink(sink))
	if err := fault.Enable("core.look.record", "1*panic(poisoned flow)"); err != nil {
		t.Fatal(err)
	}
	err := runPipeline(t, c, func() {
		flows := make([]netflow.FlowRecord, 0, n)
		for i := 0; i < n; i++ {
			flows = append(flows, superviseFlow(i))
		}
		if got := c.OfferFlowBatch(flows); got != n {
			t.Errorf("offered %d of %d", got, n)
		}
	})
	if err != nil {
		t.Fatalf("Run = %v", err)
	}
	st := c.Stats()
	if st.Poisoned != 1 {
		t.Fatalf("Poisoned = %d, want 1", st.Poisoned)
	}
	// The poisoned flow fires before the tally, so Flows excludes it and
	// the sink received everything but the one slot.
	if st.Flows != n-1 || written.Load() != n-1 || st.Written != n-1 {
		t.Fatalf("flows/written = %d/%d/%d, want %d", st.Flows, st.Written, written.Load(), n-1)
	}
	if look := supStatus(st, "look"); look.Panics != 1 {
		t.Fatalf("look panics = %d, want 1", look.Panics)
	}
}

// panickyService panics on its first serves, then blocks until ctx done.
type panickyService struct {
	panicsLeft atomic.Int64
	serves     atomic.Int64
}

func (p *panickyService) Name() string { return "flaky" }
func (p *panickyService) Serve(ctx context.Context) error {
	p.serves.Add(1)
	if p.panicsLeft.Add(-1) >= 0 {
		panic("service crash")
	}
	<-ctx.Done()
	return nil
}

// TestServiceSupervisedRestart proves a panicking service is restarted
// with backoff and counted, and its panic never reaches the process.
func TestServiceSupervisedRestart(t *testing.T) {
	svc := &panickyService{}
	svc.panicsLeft.Store(2)
	c := New(superviseConfig(), WithServices(svc))
	err := runPipeline(t, c, func() {
		deadline := time.After(5 * time.Second)
		for svc.serves.Load() < 3 {
			select {
			case <-deadline:
				t.Error("service never recovered")
				return
			case <-time.After(time.Millisecond):
			}
		}
	})
	// The supervised loop reports the last abnormal error even though the
	// service later recovered — a flapping service must not be silent.
	if err == nil || !strings.Contains(err.Error(), "contained panic") {
		t.Fatalf("Run = %v, want joined contained-panic error", err)
	}
	st := c.Stats()
	s := supStatus(st, "service:flaky")
	if s.Panics != 2 || s.Restarts != 2 {
		t.Fatalf("service panics/restarts = %d/%d, want 2/2", s.Panics, s.Restarts)
	}
	if st.Restarts != 2 {
		t.Fatalf("total restarts = %d, want 2", st.Restarts)
	}
}

// TestSinkPanicContained proves a panicking sink ends the run like a sink
// error — graceful drain, error joined — instead of crashing the process.
func TestSinkPanicContained(t *testing.T) {
	sink := SinkFunc(func(cf CorrelatedFlow) { panic("sink exploded") })
	c := New(superviseConfig(), WithSink(sink))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- c.Run(ctx) }()
	c.OfferFlowBatch([]netflow.FlowRecord{superviseFlow(1)})
	var err error
	select {
	case err = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after sink panic")
	}
	if err == nil || !strings.Contains(err.Error(), "contained panic") {
		t.Fatalf("Run = %v, want contained-panic sink error", err)
	}
	if w := supStatus(c.Stats(), "write"); w.Panics != 1 {
		t.Fatalf("write panics = %d, want 1", w.Panics)
	}
}

// TestInjectedSinkErrorIsErrInjected sanity-checks failpoint error
// provenance end to end through errors.Join.
func TestInjectedSinkErrorIsErrInjected(t *testing.T) {
	defer fault.DisableAll()
	p := fault.New("core.test.provenance")
	if err := fault.Enable(p.Name(), "1*error(x)"); err != nil {
		t.Fatal(err)
	}
	err := errors.Join(errors.New("other"), p.Inject())
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatal("injected error lost through Join")
	}
}
