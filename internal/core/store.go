package core

import (
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cmap"
)

// Tier identifies which map generation satisfied a lookup (Algorithm 2's
// Active → Inactive → Long search order).
type Tier uint8

// Lookup tiers.
const (
	TierNone Tier = iota
	TierActive
	TierInactive
	TierLong
)

// String returns the tier name.
func (t Tier) String() string {
	switch t {
	case TierActive:
		return "active"
	case TierInactive:
		return "inactive"
	case TierLong:
		return "long"
	default:
		return "none"
	}
}

// store is one family of FlowDNS hashmaps (either IP-NAME or NAME-CNAME):
// per-split active/inactive/long generations plus the clear-up machinery of
// Algorithm 1. All methods are safe for concurrent use.
//
// Splits are laid out lane-major: the split index of a key is
// (laneOf(key) * perLane) + withinLane(key), with laneOf derived from the
// same hash the correlator uses to partition flows onto correlation lanes.
// When lookups route by the partition address (LookupDestination), every
// split slice [lane*perLane, (lane+1)*perLane) is read by exactly one
// lane's workers, so concurrent LookUp workers never contend on the same
// generation shards.
type store struct {
	active   []*cmap.Map
	inactive []*cmap.Map
	long     []*cmap.Map

	splits        int
	lanes         int // lane-major grouping of splits
	perLane       int // splits per lane; splits == lanes*perLane
	interval      time.Duration
	rotation      bool // keep an inactive generation on clear-up
	clearUp       bool // clear at all
	longEnabled   bool
	ttlThreshold  time.Duration // records with TTL >= this go to long
	exactTTL      bool
	sweepInterval time.Duration

	// lastClear / lastSweep hold the UnixNano of the record timestamp that
	// started the current generation; 0 means "not initialized yet".
	lastClear atomic.Int64
	lastSweep atomic.Int64
	rotateMu  sync.Mutex

	rotations atomic.Uint64
	sweeps    atomic.Uint64
	swept     atomic.Uint64
}

// storeConfig carries the subset of Config a store needs.
type storeConfig struct {
	splits        int
	lanes         int
	interval      time.Duration
	rotation      bool
	clearUp       bool
	longEnabled   bool
	exactTTL      bool
	sweepInterval time.Duration
	shardsPerMap  int
}

func newStore(sc storeConfig) *store {
	if sc.splits < 1 {
		sc.splits = 1
	}
	if sc.lanes < 1 {
		sc.lanes = 1
	}
	if sc.shardsPerMap < 1 {
		sc.shardsPerMap = cmap.DefaultShardCount
	}
	// A single-split store (NAME-CNAME, the NoSplit ablation) cannot give
	// each lane its own slice; every lane shares split 0.
	if sc.splits == 1 {
		sc.lanes = 1
	}
	perLane := (sc.splits + sc.lanes - 1) / sc.lanes
	splits := sc.lanes * perLane
	s := &store{
		splits:        splits,
		lanes:         sc.lanes,
		perLane:       perLane,
		interval:      sc.interval,
		rotation:      sc.rotation,
		clearUp:       sc.clearUp,
		longEnabled:   sc.longEnabled,
		ttlThreshold:  sc.interval,
		exactTTL:      sc.exactTTL,
		sweepInterval: sc.sweepInterval,
		active:        make([]*cmap.Map, splits),
		inactive:      make([]*cmap.Map, splits),
		long:          make([]*cmap.Map, splits),
	}
	for i := 0; i < splits; i++ {
		s.active[i] = cmap.NewWithShards(sc.shardsPerMap)
		s.inactive[i] = cmap.NewWithShards(sc.shardsPerMap)
		s.long[i] = cmap.NewWithShards(sc.shardsPerMap)
	}
	return s
}

// splitFor implements the paper's step-4 labeling lane-major: the low bits
// of the key hash select the lane (matching the correlator's flow
// partition), a golden-ratio remix selects the split within the lane's
// slice. Both put and get derive the index from the same cmap hash, so one
// hash per key serves lane routing, split labeling, and shard selection.
func (s *store) splitFor(h uint32) int {
	if s.splits == 1 {
		return 0
	}
	lane := int(h % uint32(s.lanes))
	within := int((h * 0x9E3779B9 >> 8) % uint32(s.perLane))
	return lane*s.perLane + within
}

// put inserts one record per Algorithm 1: first advance the clear-up clock
// using the record's own timestamp, then place the record by TTL.
func (s *store) put(ts time.Time, ttl uint32, key, value string) {
	s.putHash(ts, ttl, cmap.Hash(key), key, value)
}

func (s *store) putHash(ts time.Time, ttl uint32, h uint32, key, value string) {
	s.maybeClearUp(ts)
	if s.exactTTL {
		// Appendix A.8: every record carries its exact expiry; the sweep in
		// maybeSweep scans it back out. Everything lands in Active.
		s.maybeSweep(ts)
		s.active[s.splitFor(h)].SetHash(h, key, encodeExpiry(value, ts.Add(time.Duration(ttl)*time.Second)))
		return
	}
	n := s.splitFor(h)
	if s.longEnabled && time.Duration(ttl)*time.Second >= s.ttlThreshold {
		s.long[n].SetHash(h, key, value)
		return
	}
	s.active[n].SetHash(h, key, value)
}

// putBytesHash is put for a byte-slice key (the correlator's binary IP
// keys) with a caller-supplied hash. The caller must use the same hash
// function for every operation touching these keys — the correlator uses
// ipHash — since it selects both the split and the shard. The key bytes
// are only copied when the map inserts the entry.
func (s *store) putBytesHash(ts time.Time, ttl uint32, h uint32, key []byte, value string) {
	s.maybeClearUp(ts)
	if s.exactTTL {
		s.maybeSweep(ts)
		s.active[s.splitFor(h)].SetBytesHash(h, key, encodeExpiry(value, ts.Add(time.Duration(ttl)*time.Second)))
		return
	}
	n := s.splitFor(h)
	if s.longEnabled && time.Duration(ttl)*time.Second >= s.ttlThreshold {
		s.long[n].SetBytesHash(h, key, value)
		return
	}
	s.active[n].SetBytesHash(h, key, value)
}

// get implements Algorithm 2's deepLookUp: Active, then Inactive, then Long.
// In exact-TTL mode the stored expiry is honoured: expired entries do not
// match (the paper's A.8 condition TTL_dns + Timestamp_dns < Timestamp_netflow).
// Generations that are empty (drained inactive/long maps, common outside
// rotation windows) are skipped with one atomic load instead of a locked
// probe.
func (s *store) get(now time.Time, key string) (string, Tier) {
	// A single-split store (NAME-CNAME) that holds nothing — no CNAMEs
	// seen yet, or all generations cleared — resolves to a miss before
	// paying for the key hash. This keeps the per-flow CNAME walk nearly
	// free for workloads without CNAME chains.
	if s.splits == 1 && s.active[0].Empty() && s.inactive[0].Empty() && s.long[0].Empty() {
		return "", TierNone
	}
	h := cmap.Hash(key)
	n := s.splitFor(h)
	if !s.active[n].Empty() {
		if v, ok := s.active[n].GetHash(h, key); ok {
			return s.checkExpiry(now, v)
		}
	}
	if !s.inactive[n].Empty() {
		if v, ok := s.inactive[n].GetHash(h, key); ok {
			return v, TierInactive
		}
	}
	if !s.long[n].Empty() {
		if v, ok := s.long[n].GetHash(h, key); ok {
			return v, TierLong
		}
	}
	return "", TierNone
}

// getBytesHash is get for a byte-slice key with a caller-supplied hash;
// the allocation-free LookUp hit path. The key is never retained.
func (s *store) getBytesHash(now time.Time, h uint32, key []byte) (string, Tier) {
	n := s.splitFor(h)
	if !s.active[n].Empty() {
		if v, ok := s.active[n].GetBytesHash(h, key); ok {
			return s.checkExpiry(now, v)
		}
	}
	if !s.inactive[n].Empty() {
		if v, ok := s.inactive[n].GetBytesHash(h, key); ok {
			return v, TierInactive
		}
	}
	if !s.long[n].Empty() {
		if v, ok := s.long[n].GetBytesHash(h, key); ok {
			return v, TierLong
		}
	}
	return "", TierNone
}

// checkExpiry resolves an Active-generation hit, decoding the stored expiry
// in exact-TTL mode.
func (s *store) checkExpiry(now time.Time, v string) (string, Tier) {
	if s.exactTTL {
		value, exp := decodeExpiry(v)
		if now.After(exp) {
			return "", TierNone
		}
		return value, TierActive
	}
	return v, TierActive
}

// memoize writes a resolved multi-hop result back into the Active maps
// (§3.3 step 7) without advancing the clear-up clock: the memo entry's
// lifetime belongs to the current generation.
func (s *store) memoize(key, value string) {
	h := cmap.Hash(key)
	s.active[s.splitFor(h)].SetHash(h, key, value)
}

// maybeClearUp rotates (or clears) every split once interval has elapsed on
// the record clock. Only one goroutine performs the rotation; the check is
// cheap for everyone else.
func (s *store) maybeClearUp(ts time.Time) {
	if !s.clearUp || s.exactTTL {
		return
	}
	last := s.lastClear.Load()
	if last == 0 {
		// First record initializes the generation clock.
		s.lastClear.CompareAndSwap(0, ts.UnixNano())
		return
	}
	if ts.UnixNano()-last < int64(s.interval) {
		return
	}
	s.rotateMu.Lock()
	defer s.rotateMu.Unlock()
	last = s.lastClear.Load()
	if ts.UnixNano()-last < int64(s.interval) {
		return // someone else rotated while we waited
	}
	for i := range s.active {
		if s.rotation {
			s.active[i].Snapshot(s.inactive[i])
		} else {
			s.active[i].Clear()
		}
	}
	s.lastClear.Store(ts.UnixNano())
	s.rotations.Add(1)
}

// maybeSweep runs the exact-TTL scan-based expiry (Appendix A.8's "regular
// process to clear-up the expired DNS records"). It write-locks every shard
// of every split while scanning — the contention the paper blames for the
// >90 % loss rate.
func (s *store) maybeSweep(ts time.Time) {
	last := s.lastSweep.Load()
	if last == 0 {
		s.lastSweep.CompareAndSwap(0, ts.UnixNano())
		return
	}
	if ts.UnixNano()-last < int64(s.sweepInterval) {
		return
	}
	if !s.lastSweep.CompareAndSwap(last, ts.UnixNano()) {
		return // another worker is sweeping
	}
	removed := 0
	for i := range s.active {
		removed += s.active[i].RemoveIf(func(_, v string) bool {
			_, exp := decodeExpiry(v)
			return ts.After(exp)
		})
	}
	s.sweeps.Add(1)
	s.swept.Add(uint64(removed))
}

// size returns total entries across all generations and splits.
func (s *store) size() int {
	n := 0
	for i := range s.active {
		n += s.active[i].Len() + s.inactive[i].Len() + s.long[i].Len()
	}
	return n
}

// expiry encoding for exact-TTL mode: "value\x00unixNano".
func encodeExpiry(value string, exp time.Time) string {
	return value + "\x00" + strconv.FormatInt(exp.UnixNano(), 10)
}

func decodeExpiry(v string) (string, time.Time) {
	i := strings.LastIndexByte(v, 0)
	if i < 0 {
		return v, time.Time{}
	}
	ns, err := strconv.ParseInt(v[i+1:], 10, 64)
	if err != nil {
		return v[:i], time.Time{}
	}
	return v[:i], time.Unix(0, ns)
}
