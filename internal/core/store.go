package core

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cmap"
)

// Tier identifies which map generation satisfied a lookup (Algorithm 2's
// Active → Inactive → Long search order).
type Tier uint8

// Lookup tiers.
const (
	TierNone Tier = iota
	TierActive
	TierInactive
	TierLong
)

// String returns the tier name.
func (t Tier) String() string {
	switch t {
	case TierActive:
		return "active"
	case TierInactive:
		return "inactive"
	case TierLong:
		return "long"
	default:
		return "none"
	}
}

// store is one family of FlowDNS hashmaps (either IP-NAME or NAME-CNAME):
// per-split active/inactive/long generations plus the clear-up machinery of
// Algorithm 1. All methods are safe for concurrent use.
//
// Splits are laid out lane-major: the split index of a key is
// (laneOf(key) * perLane) + withinLane(key), with laneOf derived from the
// same hash the correlator uses to partition flows onto correlation lanes.
// When lookups route by the partition address (LookupDestination), every
// split slice [lane*perLane, (lane+1)*perLane) is read by exactly one
// lane's workers, so concurrent LookUp workers never contend on the same
// generation shards.
type store struct {
	active   []*cmap.Map
	inactive []*cmap.Map
	long     []*cmap.Map

	splits        int
	lanes         int // lane-major grouping of splits
	perLane       int // splits per lane; splits == lanes*perLane
	interval      time.Duration
	rotation      bool // keep an inactive generation on clear-up
	clearUp       bool // clear at all
	longEnabled   bool
	ttlThreshold  time.Duration // records with TTL >= this go to long
	exactTTL      bool
	sweepInterval time.Duration

	// lastClear / lastSweep hold the UnixNano of the record timestamp that
	// started the current generation; 0 means "not initialized yet".
	lastClear atomic.Int64
	lastSweep atomic.Int64
	rotateMu  sync.Mutex

	rotations atomic.Uint64
	sweeps    atomic.Uint64
	swept     atomic.Uint64
}

// storeConfig carries the subset of Config a store needs.
type storeConfig struct {
	splits        int
	lanes         int
	interval      time.Duration
	rotation      bool
	clearUp       bool
	longEnabled   bool
	exactTTL      bool
	sweepInterval time.Duration
	shardsPerMap  int
}

func newStore(sc storeConfig) *store {
	if sc.splits < 1 {
		sc.splits = 1
	}
	if sc.lanes < 1 {
		sc.lanes = 1
	}
	if sc.shardsPerMap < 1 {
		sc.shardsPerMap = cmap.DefaultShardCount
	}
	// A single-split store (NAME-CNAME, the NoSplit ablation) cannot give
	// each lane its own slice; every lane shares split 0.
	if sc.splits == 1 {
		sc.lanes = 1
	}
	perLane := (sc.splits + sc.lanes - 1) / sc.lanes
	splits := sc.lanes * perLane
	s := &store{
		splits:        splits,
		lanes:         sc.lanes,
		perLane:       perLane,
		interval:      sc.interval,
		rotation:      sc.rotation,
		clearUp:       sc.clearUp,
		longEnabled:   sc.longEnabled,
		ttlThreshold:  sc.interval,
		exactTTL:      sc.exactTTL,
		sweepInterval: sc.sweepInterval,
		active:        make([]*cmap.Map, splits),
		inactive:      make([]*cmap.Map, splits),
		long:          make([]*cmap.Map, splits),
	}
	for i := 0; i < splits; i++ {
		s.active[i] = cmap.NewWithShards(sc.shardsPerMap)
		s.inactive[i] = cmap.NewWithShards(sc.shardsPerMap)
		s.long[i] = cmap.NewWithShards(sc.shardsPerMap)
	}
	return s
}

// splitFor implements the paper's step-4 labeling lane-major: the low bits
// of the key hash select the lane (matching the correlator's flow
// partition), a golden-ratio remix selects the split within the lane's
// slice. Both put and get derive the index from the same cmap hash, so one
// hash per key serves lane routing, split labeling, and shard selection.
func (s *store) splitFor(h uint32) int {
	if s.splits == 1 {
		return 0
	}
	lane := int(h % uint32(s.lanes))
	within := int((h * 0x9E3779B9 >> 8) % uint32(s.perLane))
	return lane*s.perLane + within
}

// put inserts one record per Algorithm 1: first advance the clear-up clock
// using the record's own timestamp, then place the record by TTL.
func (s *store) put(ts time.Time, ttl uint32, key, value string) {
	s.putHash(ts, ttl, cmap.Hash(key), key, value)
}

func (s *store) putHash(ts time.Time, ttl uint32, h uint32, key, value string) {
	s.maybeClearUp(ts)
	if s.exactTTL {
		// Appendix A.8: every record carries its exact expiry, stored as a
		// typed field (no string encoding, no allocation); the sweep in
		// maybeSweep scans it back out. Everything lands in Active.
		s.maybeSweep(ts)
		s.active[s.splitFor(h)].SetHashExpire(h, key, value, expiryOf(ts, ttl))
		return
	}
	n := s.splitFor(h)
	if s.longEnabled && time.Duration(ttl)*time.Second >= s.ttlThreshold {
		s.long[n].SetHash(h, key, value)
		return
	}
	s.active[n].SetHash(h, key, value)
}

// putBytesHash is put for a byte-slice key (the correlator's binary IP
// keys) with a caller-supplied hash. The caller must use the same hash
// function for every operation touching these keys — the correlator uses
// ipHash — since it selects both the split and the shard. The key bytes
// are only copied when the map inserts the entry.
func (s *store) putBytesHash(ts time.Time, ttl uint32, h uint32, key []byte, value string) {
	s.maybeClearUp(ts)
	if s.exactTTL {
		s.maybeSweep(ts)
		s.active[s.splitFor(h)].SetBytesHashExpire(h, key, value, expiryOf(ts, ttl))
		return
	}
	n := s.splitFor(h)
	if s.longEnabled && time.Duration(ttl)*time.Second >= s.ttlThreshold {
		s.long[n].SetBytesHash(h, key, value)
		return
	}
	s.active[n].SetBytesHash(h, key, value)
}

// putItems is the batched binary-key fill path: the clear-up clock advances
// once per batch (ts is the batch's latest record timestamp) and the items
// are grouped by destination split and shard, so each touched shard is
// locked once per batch instead of once per record. active receives
// Active-generation items (exact-TTL items carry their expiry in Item.Exp);
// long receives long-TTL items. sc is caller-owned reusable scratch.
func (s *store) putItems(ts time.Time, active, long []cmap.Item, sc *dispatchScratch) {
	s.maybeClearUp(ts)
	if s.exactTTL {
		s.maybeSweep(ts)
	}
	s.dispatchItems(s.active, active, sc)
	s.dispatchItems(s.long, long, sc)
}

// dispatchScratch is the reusable buffer set one dispatchItems call sorts
// through: per-item bucket keys, bucket counters, and the scattered item
// order. Owned by the fill worker (via fillBuf), so a steady-state batch
// allocates nothing.
type dispatchScratch struct {
	keys   []int32
	counts []int32
	out    []cmap.Item
}

// dispatchItems groups items by (split, shard) with a counting sort and
// hands each split's contiguous bucket range to that split's map in one
// SetItems call, whose shard-ordered runs then take each touched shard
// lock exactly once per batch. The sort is stable by construction —
// duplicate keys inside one batch keep their stream order, preserving
// last-write-wins (§4 accuracy overwrite semantics) — and O(n + buckets)
// with the bucket key computed once per item, a fraction of a comparison
// sort's cost on the per-batch path.
func (s *store) dispatchItems(gen []*cmap.Map, items []cmap.Item, sc *dispatchScratch) {
	n := len(items)
	if n == 0 {
		return
	}
	if n == 1 {
		gen[s.splitFor(items[0].Hash)].SetItems(items)
		return
	}
	m0 := gen[0] // all generation maps share one shard count
	shards := m0.ShardCount()
	buckets := s.splits * shards
	if cap(sc.counts) < buckets+1 {
		// counts carries a zeroed-between-calls invariant: it is allocated
		// zero and every call re-zeroes exactly the window it touched, so
		// a lane-local batch (which lands in one split's 32-bucket window)
		// never pays for the full bucket range.
		sc.counts = make([]int32, buckets+1)
	}
	counts := sc.counts[:buckets+1]
	if cap(sc.keys) < n {
		sc.keys = make([]int32, n)
	}
	keys := sc.keys[:n]
	if cap(sc.out) < n {
		sc.out = make([]cmap.Item, n)
	}
	out := sc.out[:n]
	minB, maxB := int32(buckets), int32(0)
	for i := range items {
		k := int32(s.splitFor(items[i].Hash)*shards + m0.ShardIndex(items[i].Hash))
		keys[i] = k
		counts[k+1]++
		if k < minB {
			minB = k
		}
		if k > maxB {
			maxB = k
		}
	}
	for b := minB + 1; b <= maxB; b++ {
		counts[b+1] += counts[b]
	}
	for i := range items {
		k := keys[i]
		out[counts[k]] = items[i]
		counts[k]++
	}
	// After the scatter, counts[k] is the end offset of bucket k (offsets
	// are relative to the window start, which is 0 because counts[minB]
	// was zero). A split's buckets are contiguous, so its range ends at
	// its last bucket's end.
	prevEnd := int32(0)
	firstSplit, lastSplit := int(minB)/shards, int(maxB)/shards
	for sp := firstSplit; sp <= lastSplit; sp++ {
		hi := int32((sp+1)*shards - 1)
		if hi > maxB {
			hi = maxB
		}
		end := counts[hi]
		if end > prevEnd {
			gen[sp].SetItems(out[prevEnd:end])
		}
		prevEnd = end
	}
	// Restore the zeroed invariant for the touched window only.
	clear(counts[minB : maxB+2])
}

// expiryOf computes a record's absolute expiry for exact-TTL mode.
func expiryOf(ts time.Time, ttl uint32) int64 {
	return ts.Add(time.Duration(ttl) * time.Second).UnixNano()
}

// get implements Algorithm 2's deepLookUp: Active, then Inactive, then Long.
// In exact-TTL mode the stored expiry is honoured: expired entries do not
// match (the paper's A.8 condition TTL_dns + Timestamp_dns < Timestamp_netflow).
// Generations that are empty (drained inactive/long maps, common outside
// rotation windows) are skipped with one atomic load instead of a locked
// probe.
func (s *store) get(now time.Time, key string) (string, Tier) {
	// A single-split store (NAME-CNAME) that holds nothing — no CNAMEs
	// seen yet, or all generations cleared — resolves to a miss before
	// paying for the key hash. This keeps the per-flow CNAME walk nearly
	// free for workloads without CNAME chains.
	if s.splits == 1 && s.active[0].Empty() && s.inactive[0].Empty() && s.long[0].Empty() {
		return "", TierNone
	}
	h := cmap.Hash(key)
	n := s.splitFor(h)
	if !s.active[n].Empty() {
		if s.exactTTL {
			if v, exp, ok := s.active[n].GetHashExpire(h, key); ok {
				return s.checkExpiry(now, v, exp)
			}
		} else if v, ok := s.active[n].GetHash(h, key); ok {
			return v, TierActive
		}
	}
	if !s.inactive[n].Empty() {
		if v, ok := s.inactive[n].GetHash(h, key); ok {
			return v, TierInactive
		}
	}
	if !s.long[n].Empty() {
		if v, ok := s.long[n].GetHash(h, key); ok {
			return v, TierLong
		}
	}
	return "", TierNone
}

// getBytesHash is get for a byte-slice key with a caller-supplied hash;
// the allocation-free LookUp hit path. The key is never retained.
func (s *store) getBytesHash(now time.Time, h uint32, key []byte) (string, Tier) {
	n := s.splitFor(h)
	if !s.active[n].Empty() {
		if s.exactTTL {
			if v, exp, ok := s.active[n].GetBytesHashExpire(h, key); ok {
				return s.checkExpiry(now, v, exp)
			}
		} else if v, ok := s.active[n].GetBytesHash(h, key); ok {
			return v, TierActive
		}
	}
	if !s.inactive[n].Empty() {
		if v, ok := s.inactive[n].GetBytesHash(h, key); ok {
			return v, TierInactive
		}
	}
	if !s.long[n].Empty() {
		if v, ok := s.long[n].GetBytesHash(h, key); ok {
			return v, TierLong
		}
	}
	return "", TierNone
}

// checkExpiry resolves an exact-TTL Active-generation hit against the typed
// expiry: two integer loads and one compare, replacing the per-hit string
// split + strconv parse of the former "value\x00unixNano" encoding. The
// paper's A.8 condition (TTL_dns + Timestamp_dns < Timestamp_netflow) keeps
// its boundary: a record expiring exactly at the flow timestamp still
// matches. Entries without an expiry (exp 0 — memoized writes) read as
// already expired, exactly as the string encoding resolved them.
func (s *store) checkExpiry(now time.Time, v string, exp int64) (string, Tier) {
	if now.UnixNano() > exp {
		return "", TierNone
	}
	return v, TierActive
}

// memoize writes a resolved multi-hop result back into the Active maps
// (§3.3 step 7) without advancing the clear-up clock: the memo entry's
// lifetime belongs to the current generation.
func (s *store) memoize(key, value string) {
	h := cmap.Hash(key)
	s.active[s.splitFor(h)].SetHash(h, key, value)
}

// maybeClearUp rotates (or clears) every split once interval has elapsed on
// the record clock. Only one goroutine performs the rotation; the check is
// cheap for everyone else.
func (s *store) maybeClearUp(ts time.Time) {
	if !s.clearUp || s.exactTTL {
		return
	}
	last := s.lastClear.Load()
	if last == 0 {
		// First record initializes the generation clock.
		s.lastClear.CompareAndSwap(0, ts.UnixNano())
		return
	}
	if ts.UnixNano()-last < int64(s.interval) {
		return
	}
	s.rotateMu.Lock()
	defer s.rotateMu.Unlock()
	last = s.lastClear.Load()
	if ts.UnixNano()-last < int64(s.interval) {
		return // someone else rotated while we waited
	}
	for i := range s.active {
		if s.rotation {
			s.active[i].Snapshot(s.inactive[i])
		} else {
			s.active[i].Clear()
		}
	}
	s.lastClear.Store(ts.UnixNano())
	s.rotations.Add(1)
}

// maybeSweep runs the exact-TTL scan-based expiry (Appendix A.8's "regular
// process to clear-up the expired DNS records"). It write-locks every shard
// of every split while scanning — the contention the paper blames for the
// >90 % loss rate.
func (s *store) maybeSweep(ts time.Time) {
	last := s.lastSweep.Load()
	if last == 0 {
		s.lastSweep.CompareAndSwap(0, ts.UnixNano())
		return
	}
	if ts.UnixNano()-last < int64(s.sweepInterval) {
		return
	}
	if !s.lastSweep.CompareAndSwap(last, ts.UnixNano()) {
		return // another worker is sweeping
	}
	removed := 0
	now := ts.UnixNano()
	for i := range s.active {
		removed += s.active[i].RemoveIfExpired(now)
	}
	s.sweeps.Add(1)
	s.swept.Add(uint64(removed))
}

// size returns total entries across all generations and splits.
func (s *store) size() int {
	n := 0
	for i := range s.active {
		n += s.active[i].Len() + s.inactive[i].Len() + s.long[i].Len()
	}
	return n
}
