package core

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"os"
	"sync"
	"time"

	"repro/internal/fault"
)

// Failpoints covering the sink path. They fire inside RetrySink's inner
// attempt, so an injected outage exercises the retry/backoff/spill
// machinery exactly like a real endpoint failure would; arming "panic"
// specs exercises the wrapper's panic containment instead.
var (
	fpSinkWrite = fault.New("core.sink.write")
	fpSinkFlush = fault.New("core.sink.flush")
)

// Defaults for RetryConfig's zero values.
const (
	DefaultRetryMaxRetries = 3
	DefaultRetryBackoff    = 100 * time.Millisecond
	DefaultRetryTimeout    = 10 * time.Second
	DefaultRetryMemLimit   = 65536
	DefaultRetrySpillLimit = 64 << 20 // 64 MiB
)

// RetryConfig tunes a RetrySink.
type RetryConfig struct {
	// MaxRetries is how many times a failed WriteBatch is retried before
	// the batch is diverted to the spill queue. 0 means the default (3);
	// negative means no retries (first failure spills).
	MaxRetries int
	// Backoff is the delay before the first retry, doubling with each
	// subsequent retry of the same batch. 0 means the default (100 ms).
	Backoff time.Duration
	// Timeout bounds each individual attempt via the write context. 0
	// means the default (10 s); negative disables the per-attempt bound.
	Timeout time.Duration
	// MemLimit bounds the in-memory spill queue in records. 0 means the
	// default (65536); negative means no in-memory queue (straight to
	// disk, or dropped when SpillPath is empty).
	MemLimit int
	// SpillPath is the on-disk overflow file. Records that do not fit in
	// memory are appended there (JSON lines, one batch per line) and
	// replayed after recovery — including recovery in a later process:
	// NewRetrySink picks an existing spill file back up on boot. Empty
	// disables disk spill.
	SpillPath string
	// SpillLimit bounds the spill file in bytes; batches beyond it are
	// dropped (and counted). 0 means the default (64 MiB).
	SpillLimit int64
}

// normalized fills zero fields with defaults.
func (c RetryConfig) normalized() RetryConfig {
	if c.MaxRetries == 0 {
		c.MaxRetries = DefaultRetryMaxRetries
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.Backoff <= 0 {
		c.Backoff = DefaultRetryBackoff
	}
	if c.Timeout == 0 {
		c.Timeout = DefaultRetryTimeout
	}
	if c.MemLimit == 0 {
		c.MemLimit = DefaultRetryMemLimit
	}
	if c.MemLimit < 0 {
		c.MemLimit = 0
	}
	if c.SpillLimit <= 0 {
		c.SpillLimit = DefaultRetrySpillLimit
	}
	return c
}

// RetryStats is a RetrySink's accounting snapshot. The queue-invariant
// companion: every record handed to a RetrySink is in exactly one of
// Delivered (inner sink took it), SpillDepth (still queued), or Dropped.
type RetryStats struct {
	// Delivered counts records the inner sink accepted (first try, retry,
	// or replay).
	Delivered uint64
	// Retries counts retry attempts after a failed write.
	Retries uint64
	// Spilled counts records diverted to the spill queue; SpilledBatches
	// the batches they arrived in.
	Spilled        uint64
	SpilledBatches uint64
	// Replayed counts spilled records later delivered to the inner sink.
	Replayed uint64
	// Dropped counts records lost because both spill bounds were
	// exhausted; DroppedBatches the batches they arrived in.
	Dropped        uint64
	DroppedBatches uint64
	// PanicsContained counts inner-sink panics converted to errors.
	PanicsContained uint64
	// FlushErrors counts inner Flush failures absorbed by the wrapper.
	FlushErrors uint64
	// SpillDepth is the current backlog in records (memory + disk);
	// DiskDepth the on-disk share; SpillBytes the spill file size.
	SpillDepth int
	DiskDepth  int
	SpillBytes int64
}

// RetrySink wraps any Sink with timeout-bounded attempts, doubling-backoff
// retries, and a bounded in-memory/on-disk spill queue with
// replay-on-recovery — so a downstream outage degrades to bounded,
// accounted buffering instead of killing the pipeline.
//
// Semantics: WriteBatch never returns an error for a batch the wrapper has
// taken responsibility for — a batch either reaches the inner sink, waits
// in the spill queue (replayed in FIFO order once the endpoint recovers),
// or is dropped against a full queue and counted. The write workers
// therefore never see a transient outage; only Close surfaces a terminal
// error. Replay preserves batch order: while a backlog exists, new batches
// queue behind it rather than overtaking it.
type RetrySink struct {
	inner Sink
	cfg   RetryConfig

	mu    sync.Mutex
	mem   [][]CorrelatedFlow // in-memory backlog, FIFO
	memN  int                // records in mem
	disk  *spillFile         // nil when SpillPath is empty
	stats RetryStats

	// sleep is the backoff clock; tests inject their own.
	sleep func(time.Duration)
}

// NewRetrySink wraps inner. If cfg.SpillPath names an existing non-empty
// spill file (a previous process's unreplayed backlog), it is adopted and
// replayed on the first recovery.
func NewRetrySink(inner Sink, cfg RetryConfig) (*RetrySink, error) {
	s := &RetrySink{inner: inner, cfg: cfg.normalized(), sleep: time.Sleep}
	if s.cfg.SpillPath != "" {
		f, err := openSpillFile(s.cfg.SpillPath)
		if err != nil {
			return nil, fmt.Errorf("core: retry sink: %w", err)
		}
		s.disk = f
	}
	return s, nil
}

// WriteBatch implements Sink. See the type comment for the absorb
// semantics; the returned error is always nil.
func (s *RetrySink) WriteBatch(ctx context.Context, batch []CorrelatedFlow) error {
	if len(batch) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.backlogLocked() > 0 {
		// An outage backlog exists. Replay it first — FIFO order — and if
		// the endpoint is still down, queue the new batch behind it.
		if err := s.replayLocked(ctx); err != nil {
			s.spillLocked(batch)
			return nil
		}
	}
	if err := s.attemptLocked(ctx, batch); err != nil {
		s.spillLocked(batch)
	}
	return nil
}

// Flush implements Sink. A backlog means the endpoint was down; Flush
// probes it with a replay. Inner flush errors are absorbed and counted —
// surfacing them would shut the pipeline down, which is exactly what this
// wrapper exists to prevent.
func (s *RetrySink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.backlogLocked() > 0 {
		if err := s.replayLocked(context.Background()); err != nil {
			return nil
		}
	}
	if err := s.flushOnce(); err != nil {
		s.stats.FlushErrors++
	}
	return nil
}

// Close makes a final replay attempt, persists what remains, and closes
// the inner sink. Records that could be neither delivered nor persisted
// to disk are counted as dropped; an error reports whatever was lost.
func (s *RetrySink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var errs []error
	if s.backlogLocked() > 0 {
		if err := s.replayLocked(context.Background()); err != nil {
			errs = append(errs, fmt.Errorf("core: retry sink: final replay: %w", err))
		}
	}
	// Whatever memory backlog remains outlives the process only on disk.
	for len(s.mem) > 0 {
		b := s.mem[0]
		if s.disk != nil && s.disk.bytes < s.cfg.SpillLimit {
			if _, err := s.disk.append(b); err == nil {
				s.mem = s.mem[1:]
				s.memN -= len(b)
				continue
			} else {
				errs = append(errs, fmt.Errorf("core: retry sink: persist backlog: %w", err))
			}
		}
		s.stats.Dropped += uint64(s.memN)
		s.stats.DroppedBatches += uint64(len(s.mem))
		errs = append(errs, fmt.Errorf("core: retry sink: %d undelivered records dropped at close", s.memN))
		s.mem, s.memN = nil, 0
	}
	if s.disk != nil {
		if err := s.disk.close(); err != nil {
			errs = append(errs, err)
		}
		if d := s.disk.records; d > 0 {
			errs = append(errs, fmt.Errorf("core: retry sink: %d records left in spill file %s (replayed on next boot)", d, s.cfg.SpillPath))
		}
	}
	if err := s.closeOnce(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// Stats snapshots the wrapper's accounting.
func (s *RetrySink) Stats() RetryStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.SpillDepth = s.backlogLocked()
	if s.disk != nil {
		st.DiskDepth = s.disk.records
		st.SpillBytes = s.disk.bytes
	}
	return st
}

// backlogLocked is the spill-queue depth in records.
func (s *RetrySink) backlogLocked() int {
	n := s.memN
	if s.disk != nil {
		n += s.disk.records
	}
	return n
}

// attemptLocked tries the inner write with retries, doubling backoff, and
// the per-attempt timeout.
func (s *RetrySink) attemptLocked(ctx context.Context, batch []CorrelatedFlow) error {
	backoff := s.cfg.Backoff
	for try := 0; ; try++ {
		err := s.writeOnce(ctx, batch)
		if err == nil {
			s.stats.Delivered += uint64(len(batch))
			return nil
		}
		if try >= s.cfg.MaxRetries {
			return err
		}
		s.stats.Retries++
		s.sleep(backoff)
		backoff *= 2
	}
}

// writeOnce is a single inner WriteBatch attempt: failpoint, timeout
// bound, panic containment.
func (s *RetrySink) writeOnce(ctx context.Context, batch []CorrelatedFlow) (err error) {
	defer func() {
		if r := recover(); r != nil {
			s.stats.PanicsContained++
			err = fmt.Errorf("core: retry sink: contained panic: %v", r)
		}
	}()
	if err := fpSinkWrite.Inject(); err != nil {
		return err
	}
	if s.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.Timeout)
		defer cancel()
	}
	return s.inner.WriteBatch(ctx, batch)
}

// flushOnce is a single inner Flush attempt with the same containment.
func (s *RetrySink) flushOnce() (err error) {
	defer func() {
		if r := recover(); r != nil {
			s.stats.PanicsContained++
			err = fmt.Errorf("core: retry sink: contained panic: %v", r)
		}
	}()
	if err := fpSinkFlush.Inject(); err != nil {
		return err
	}
	return s.inner.Flush()
}

// closeOnce contains a panicking inner Close.
func (s *RetrySink) closeOnce() (err error) {
	defer func() {
		if r := recover(); r != nil {
			s.stats.PanicsContained++
			err = fmt.Errorf("core: retry sink: contained panic: %v", r)
		}
	}()
	return s.inner.Close()
}

// spillLocked diverts a batch into the backlog. The batch slice belongs to
// the caller only for the duration of WriteBatch, so the wrapper copies.
// Destination rule, preserving FIFO: memory while the disk queue is empty
// and the batch fits, disk otherwise (a non-empty disk queue means memory
// holds *older* batches; writing to memory then would reorder replay).
func (s *RetrySink) spillLocked(batch []CorrelatedFlow) {
	diskEmpty := s.disk == nil || s.disk.records == 0
	if diskEmpty && s.memN+len(batch) <= s.cfg.MemLimit {
		cp := make([]CorrelatedFlow, len(batch))
		copy(cp, batch)
		s.mem = append(s.mem, cp)
		s.memN += len(batch)
		s.stats.Spilled += uint64(len(batch))
		s.stats.SpilledBatches++
		return
	}
	if s.disk != nil && s.disk.bytes < s.cfg.SpillLimit {
		if _, err := s.disk.append(batch); err == nil {
			s.stats.Spilled += uint64(len(batch))
			s.stats.SpilledBatches++
			return
		}
	}
	s.stats.Dropped += uint64(len(batch))
	s.stats.DroppedBatches++
}

// replayLocked drains the backlog through the inner sink in FIFO order:
// memory first (older), then the spill file. Each batch gets one attempt —
// recovery probing must not multiply a long outage by per-batch backoff.
// The first failure stops the replay with everything undelivered intact.
func (s *RetrySink) replayLocked(ctx context.Context) error {
	for len(s.mem) > 0 {
		b := s.mem[0]
		if err := s.writeOnce(ctx, b); err != nil {
			return err
		}
		s.stats.Delivered += uint64(len(b))
		s.stats.Replayed += uint64(len(b))
		s.mem = s.mem[1:]
		s.memN -= len(b)
	}
	if s.mem != nil && len(s.mem) == 0 {
		s.mem = nil
	}
	if s.disk != nil && s.disk.records > 0 {
		return s.disk.replay(func(b []CorrelatedFlow) error {
			if err := s.writeOnce(ctx, b); err != nil {
				return err
			}
			s.stats.Delivered += uint64(len(b))
			s.stats.Replayed += uint64(len(b))
			return nil
		})
	}
	return nil
}

// --- on-disk spill file ---

// spillRecord is the JSON form of one CorrelatedFlow in the spill file.
// Addresses marshal as text (netip), timestamps as RFC 3339.
type spillRecord struct {
	TS       time.Time  `json:"ts"`
	Src      netip.Addr `json:"src"`
	Dst      netip.Addr `json:"dst"`
	SrcPort  uint16     `json:"sp,omitempty"`
	DstPort  uint16     `json:"dp,omitempty"`
	Proto    uint8      `json:"proto,omitempty"`
	Packets  uint64     `json:"pkts,omitempty"`
	Bytes    uint64     `json:"bytes,omitempty"`
	Name     string     `json:"name,omitempty"`
	ChainLen int        `json:"chain,omitempty"`
	Tier     uint8      `json:"tier,omitempty"`
}

// spillFile is an append-only JSONL file of spilled batches (one batch per
// line) plus the replay cursor. The cursor lives in memory: after a crash
// the whole file replays again, so spill delivery is at-least-once — the
// price of not maintaining a second metadata file for a failure path.
type spillFile struct {
	path    string
	f       *os.File
	offset  int64 // replay cursor: everything before it was delivered
	bytes   int64 // file size
	records int   // undelivered records at/after offset
}

// openSpillFile opens (creating if needed) the spill file and counts any
// backlog a previous process left behind. A torn final line — a crash
// mid-append — is ignored; its batch was never acknowledged anywhere.
func openSpillFile(path string) (*spillFile, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	s := &spillFile{path: path, f: f}
	if err := s.scan(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// scan counts records and bytes from the replay cursor to the end.
func (s *spillFile) scan() error {
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	s.records = 0
	r := bufio.NewReaderSize(s.f, 1<<16)
	for {
		line, err := r.ReadBytes('\n')
		if err != nil {
			// No trailing newline: torn tail from a crash mid-append; the
			// bytes after the last good line are dead weight until the next
			// truncate-on-drain.
			break
		}
		var recs []spillRecord
		if json.Unmarshal(line, &recs) != nil {
			break
		}
		s.records += len(recs)
	}
	end, err := s.f.Seek(0, io.SeekEnd)
	if err != nil {
		return err
	}
	s.bytes = end
	return nil
}

// append encodes one batch as a line and appends it, returning the new
// file size.
func (s *spillFile) append(batch []CorrelatedFlow) (int64, error) {
	recs := make([]spillRecord, len(batch))
	for i := range batch {
		cf := &batch[i]
		recs[i] = spillRecord{
			TS: cf.Flow.Timestamp, Src: cf.Flow.SrcIP, Dst: cf.Flow.DstIP,
			SrcPort: cf.Flow.SrcPort, DstPort: cf.Flow.DstPort, Proto: cf.Flow.Proto,
			Packets: cf.Flow.Packets, Bytes: cf.Flow.Bytes,
			Name: cf.Name, ChainLen: cf.ChainLen, Tier: uint8(cf.Tier),
		}
	}
	line, err := json.Marshal(recs)
	if err != nil {
		return s.bytes, err
	}
	line = append(line, '\n')
	if _, err := s.f.Seek(0, io.SeekEnd); err != nil {
		return s.bytes, err
	}
	if _, err := s.f.Write(line); err != nil {
		return s.bytes, err
	}
	s.bytes += int64(len(line))
	s.records += len(batch)
	return s.bytes, nil
}

// replay streams undelivered batches through deliver in file order. On the
// first failure the cursor stays at the failed batch, so the next replay
// resumes exactly there. A fully drained file is truncated back to zero.
func (s *spillFile) replay(deliver func([]CorrelatedFlow) error) error {
	if _, err := s.f.Seek(s.offset, io.SeekStart); err != nil {
		return err
	}
	r := bufio.NewReaderSize(s.f, 1<<16)
	for {
		line, err := r.ReadBytes('\n')
		if err != nil {
			break // end of file (or torn tail)
		}
		var recs []spillRecord
		if json.Unmarshal(line, &recs) != nil {
			// Undecodable line: skip it rather than wedging the queue.
			s.offset += int64(len(line))
			continue
		}
		batch := make([]CorrelatedFlow, len(recs))
		for i, sr := range recs {
			batch[i] = CorrelatedFlow{Name: sr.Name, ChainLen: sr.ChainLen, Tier: Tier(sr.Tier)}
			batch[i].Flow.Timestamp = sr.TS
			batch[i].Flow.SrcIP, batch[i].Flow.DstIP = sr.Src, sr.Dst
			batch[i].Flow.SrcPort, batch[i].Flow.DstPort = sr.SrcPort, sr.DstPort
			batch[i].Flow.Proto = sr.Proto
			batch[i].Flow.Packets, batch[i].Flow.Bytes = sr.Packets, sr.Bytes
		}
		if err := deliver(batch); err != nil {
			return err
		}
		s.offset += int64(len(line))
		s.records -= len(batch)
	}
	if s.records <= 0 {
		if err := s.f.Truncate(0); err != nil {
			return err
		}
		s.offset, s.bytes, s.records = 0, 0, 0
	}
	return nil
}

// close closes the file handle (the file itself stays for the next boot).
func (s *spillFile) close() error { return s.f.Close() }
