package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/netip"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dnswire"
	"repro/internal/netflow"
	"repro/internal/stream"
)

var t0 = time.Unix(1653475200, 0) // 2022-05-25, the paper's measurement week

func aRec(ts time.Time, query, ip string, ttl uint32) stream.DNSRecord {
	return stream.DNSRecord{Timestamp: ts, Query: query, RType: dnswire.TypeA, TTL: ttl, Answer: ip}
}

func cnameRec(ts time.Time, alias, canonical string, ttl uint32) stream.DNSRecord {
	return stream.DNSRecord{Timestamp: ts, Query: alias, RType: dnswire.TypeCNAME, TTL: ttl, Answer: canonical}
}

func flow(ts time.Time, srcIP string, bytes uint64) netflow.FlowRecord {
	return netflow.FlowRecord{
		Timestamp: ts,
		SrcIP:     netip.MustParseAddr(srcIP),
		DstIP:     netip.MustParseAddr("203.0.113.200"),
		Packets:   1, Bytes: bytes, Proto: netflow.ProtoTCP,
	}
}

func newSyncCorrelator(cfg Config) *Correlator { return New(cfg) }

func TestDirectALookup(t *testing.T) {
	c := newSyncCorrelator(DefaultConfig())
	c.IngestDNS(aRec(t0, "cdn.example.com", "198.51.100.7", 300))
	cf := c.CorrelateFlow(flow(t0.Add(time.Second), "198.51.100.7", 1000))
	if !cf.Correlated() || cf.Name != "cdn.example.com" {
		t.Fatalf("cf = %+v", cf)
	}
	if cf.Tier != TierActive || cf.ChainLen != 0 {
		t.Fatalf("tier/chain = %v/%d", cf.Tier, cf.ChainLen)
	}
}

func TestCNAMEChainWalk(t *testing.T) {
	c := newSyncCorrelator(DefaultConfig())
	// service.com -> c1 -> c2 -> edge.cdn.net -> IP
	c.IngestDNS(cnameRec(t0, "service.com", "c1.cdn.net", 300))
	c.IngestDNS(cnameRec(t0, "c1.cdn.net", "c2.cdn.net", 300))
	c.IngestDNS(cnameRec(t0, "c2.cdn.net", "edge.cdn.net", 300))
	c.IngestDNS(aRec(t0, "edge.cdn.net", "198.51.100.10", 60))
	cf := c.CorrelateFlow(flow(t0.Add(time.Second), "198.51.100.10", 5000))
	if cf.Name != "service.com" {
		t.Fatalf("resolved %q, want service.com", cf.Name)
	}
	if cf.ChainLen != 3 {
		t.Fatalf("chain len = %d, want 3", cf.ChainLen)
	}
}

func TestCNAMEChainLimit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CNAMEChainLimit = 6
	c := newSyncCorrelator(cfg)
	// Build a 10-hop chain; the walk must stop at 6 (paper §6).
	for i := 0; i < 10; i++ {
		c.IngestDNS(cnameRec(t0, fmt.Sprintf("n%d.example", i+1), fmt.Sprintf("n%d.example", i), 300))
	}
	c.IngestDNS(aRec(t0, "n0.example", "198.51.100.11", 60))
	cf := c.CorrelateFlow(flow(t0.Add(time.Second), "198.51.100.11", 100))
	if cf.ChainLen != 6 {
		t.Fatalf("chain len = %d, want 6 (limit)", cf.ChainLen)
	}
	if cf.Name != "n6.example" {
		t.Fatalf("name = %q, want n6.example", cf.Name)
	}
}

func TestCNAMESelfLoopTerminates(t *testing.T) {
	c := newSyncCorrelator(DefaultConfig())
	c.IngestDNS(cnameRec(t0, "loop.example", "loop.example", 300))
	c.IngestDNS(aRec(t0, "loop.example", "198.51.100.12", 60))
	cf := c.CorrelateFlow(flow(t0.Add(time.Second), "198.51.100.12", 100))
	if cf.Name != "loop.example" || cf.ChainLen != 0 {
		t.Fatalf("cf = %+v", cf)
	}
}

func TestCNAMETwoNodeLoopTerminates(t *testing.T) {
	c := newSyncCorrelator(DefaultConfig())
	c.IngestDNS(cnameRec(t0, "a.example", "b.example", 300))
	c.IngestDNS(cnameRec(t0, "b.example", "a.example", 300))
	c.IngestDNS(aRec(t0, "b.example", "198.51.100.13", 60))
	cf := c.CorrelateFlow(flow(t0.Add(time.Second), "198.51.100.13", 100))
	// Walk bounces a<->b until the limit; it must terminate.
	if cf.ChainLen != DefaultCNAMEChainLimit {
		t.Fatalf("chain len = %d", cf.ChainLen)
	}
}

func TestMemoization(t *testing.T) {
	c := newSyncCorrelator(DefaultConfig())
	c.IngestDNS(cnameRec(t0, "service.com", "c1.cdn.net", 300))
	c.IngestDNS(cnameRec(t0, "c1.cdn.net", "edge.cdn.net", 300))
	c.IngestDNS(aRec(t0, "edge.cdn.net", "198.51.100.14", 60))
	cf1 := c.CorrelateFlow(flow(t0.Add(time.Second), "198.51.100.14", 100))
	if cf1.ChainLen != 2 || cf1.Name != "service.com" {
		t.Fatalf("first = %+v", cf1)
	}
	if c.Stats().Memoized != 1 {
		t.Fatalf("memoized = %d", c.Stats().Memoized)
	}
	// The second lookup takes the memoized shortcut: one hop.
	cf2 := c.CorrelateFlow(flow(t0.Add(2*time.Second), "198.51.100.14", 100))
	if cf2.Name != "service.com" || cf2.ChainLen != 1 {
		t.Fatalf("second = %+v", cf2)
	}
}

func TestMissReturnsNull(t *testing.T) {
	c := newSyncCorrelator(DefaultConfig())
	cf := c.CorrelateFlow(flow(t0, "198.51.100.99", 100))
	if cf.Correlated() || cf.Tier != TierNone {
		t.Fatalf("cf = %+v", cf)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Correlated != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestInvalidRecordsFiltered(t *testing.T) {
	c := newSyncCorrelator(DefaultConfig())
	c.IngestDNS(stream.DNSRecord{}) // invalid
	c.IngestDNS(stream.DNSRecord{Timestamp: t0, Query: "q", RType: dnswire.TypeTXT, Answer: "x"})
	if st := c.Stats(); st.DNSInvalid != 2 || st.DNSRecords != 0 {
		t.Fatalf("stats = %+v", st)
	}
	cf := c.CorrelateFlow(netflow.FlowRecord{})
	if cf.Correlated() {
		t.Fatal("invalid flow correlated")
	}
	if st := c.Stats(); st.FlowInvalid != 1 {
		t.Fatalf("FlowInvalid = %d", st.FlowInvalid)
	}
}

func TestQueryNameNormalized(t *testing.T) {
	c := newSyncCorrelator(DefaultConfig())
	c.IngestDNS(aRec(t0, "CDN.Example.COM.", "198.51.100.7", 60))
	cf := c.CorrelateFlow(flow(t0.Add(time.Second), "198.51.100.7", 10))
	if cf.Name != "cdn.example.com" {
		t.Fatalf("name = %q", cf.Name)
	}
}

func TestClearUpExpiresActive(t *testing.T) {
	c := newSyncCorrelator(DefaultConfig())
	c.IngestDNS(aRec(t0, "old.example", "198.51.100.20", 60))
	// Advance the record clock past 2 clear-up intervals: the first rotation
	// moves the record to inactive, the second discards it.
	c.IngestDNS(aRec(t0.Add(3601*time.Second), "mid.example", "198.51.100.21", 60))
	cf := c.CorrelateFlow(flow(t0.Add(3601*time.Second), "198.51.100.20", 10))
	if cf.Tier != TierInactive || cf.Name != "old.example" {
		t.Fatalf("after 1 rotation: %+v", cf)
	}
	c.IngestDNS(aRec(t0.Add(2*3601*time.Second), "new.example", "198.51.100.22", 60))
	cf = c.CorrelateFlow(flow(t0.Add(2*3601*time.Second), "198.51.100.20", 10))
	if cf.Correlated() {
		t.Fatalf("record survived 2 rotations: %+v", cf)
	}
	if st := c.Stats(); st.IPNameRotations != 2 {
		t.Fatalf("rotations = %d", st.IPNameRotations)
	}
}

func TestNoRotationLosesInactive(t *testing.T) {
	c := newSyncCorrelator(ConfigForVariant(VariantNoRotation))
	c.IngestDNS(aRec(t0, "old.example", "198.51.100.20", 60))
	c.IngestDNS(aRec(t0.Add(3601*time.Second), "mid.example", "198.51.100.21", 60))
	// Without rotation the clear-up wipes the record outright.
	cf := c.CorrelateFlow(flow(t0.Add(3601*time.Second), "198.51.100.20", 10))
	if cf.Correlated() {
		t.Fatalf("NoRotation kept the record: %+v", cf)
	}
}

func TestNoClearUpKeepsForever(t *testing.T) {
	c := newSyncCorrelator(ConfigForVariant(VariantNoClearUp))
	c.IngestDNS(aRec(t0, "old.example", "198.51.100.20", 60))
	// Days later the record is still there.
	later := t0.Add(100 * time.Hour)
	c.IngestDNS(aRec(later, "new.example", "198.51.100.21", 60))
	cf := c.CorrelateFlow(flow(later, "198.51.100.20", 10))
	if !cf.Correlated() || cf.Tier != TierActive {
		t.Fatalf("NoClearUp lost the record: %+v", cf)
	}
	if st := c.Stats(); st.IPNameRotations != 0 {
		t.Fatalf("rotations = %d, want 0", st.IPNameRotations)
	}
}

func TestLongHashmapSurvivesClearUp(t *testing.T) {
	c := newSyncCorrelator(DefaultConfig())
	// TTL 86400 >= AClearUpInterval: goes to the long map.
	c.IngestDNS(aRec(t0, "stable.example", "198.51.100.30", 86400))
	c.IngestDNS(aRec(t0.Add(3601*time.Second), "x.example", "198.51.100.31", 60))
	c.IngestDNS(aRec(t0.Add(2*3601*time.Second), "y.example", "198.51.100.32", 60))
	cf := c.CorrelateFlow(flow(t0.Add(2*3601*time.Second), "198.51.100.30", 10))
	if !cf.Correlated() || cf.Tier != TierLong {
		t.Fatalf("long record lost: %+v", cf)
	}
}

func TestNoLongPutsEverythingInActive(t *testing.T) {
	c := newSyncCorrelator(ConfigForVariant(VariantNoLong))
	c.IngestDNS(aRec(t0, "stable.example", "198.51.100.30", 86400))
	cf := c.CorrelateFlow(flow(t0, "198.51.100.30", 10))
	if cf.Tier != TierActive {
		t.Fatalf("tier = %v, want active", cf.Tier)
	}
	// After two clear-ups the long-TTL record is gone — the correlation
	// loss the paper measures for NoLong.
	c.IngestDNS(aRec(t0.Add(3601*time.Second), "x.example", "198.51.100.31", 60))
	c.IngestDNS(aRec(t0.Add(2*3601*time.Second), "y.example", "198.51.100.32", 60))
	cf = c.CorrelateFlow(flow(t0.Add(2*3601*time.Second), "198.51.100.30", 10))
	if cf.Correlated() {
		t.Fatalf("NoLong kept long-TTL record: %+v", cf)
	}
}

func TestNoSplitUsesOneSplit(t *testing.T) {
	c := newSyncCorrelator(ConfigForVariant(VariantNoSplit))
	if c.Config().NumSplit != 1 {
		t.Fatalf("NumSplit = %d", c.Config().NumSplit)
	}
	c.IngestDNS(aRec(t0, "a.example", "198.51.100.40", 60))
	if cf := c.CorrelateFlow(flow(t0, "198.51.100.40", 10)); !cf.Correlated() {
		t.Fatal("NoSplit lookup broken")
	}
}

func TestExactTTLExpiry(t *testing.T) {
	cfg := ConfigForVariant(VariantExactTTL)
	c := newSyncCorrelator(cfg)
	c.IngestDNS(aRec(t0, "short.example", "198.51.100.50", 30))
	// Within TTL: hit.
	if cf := c.CorrelateFlow(flow(t0.Add(10*time.Second), "198.51.100.50", 10)); !cf.Correlated() {
		t.Fatal("within-TTL lookup missed")
	}
	// After TTL: the A.8 condition rejects it even before any sweep.
	if cf := c.CorrelateFlow(flow(t0.Add(31*time.Second), "198.51.100.50", 10)); cf.Correlated() {
		t.Fatal("expired record matched")
	}
}

func TestExactTTLSweepRemoves(t *testing.T) {
	cfg := ConfigForVariant(VariantExactTTL)
	cfg.ExactTTLSweepInterval = 60 * time.Second
	c := newSyncCorrelator(cfg)
	for i := 0; i < 100; i++ {
		c.IngestDNS(aRec(t0, fmt.Sprintf("d%d.example", i), fmt.Sprintf("198.51.%d.%d", i/256, i%256), 30))
	}
	ip, _ := c.StoreSizes()
	if ip != 100 {
		t.Fatalf("pre-sweep entries = %d", ip)
	}
	// Two minutes later a new record triggers the sweep; all TTL-30 records
	// are expired and removed.
	c.IngestDNS(aRec(t0.Add(2*time.Minute), "fresh.example", "203.0.113.1", 30))
	ip, _ = c.StoreSizes()
	if ip != 1 {
		t.Fatalf("post-sweep entries = %d, want 1", ip)
	}
	if st := c.Stats(); st.Sweeps == 0 || st.SweptEntries != 100 {
		t.Fatalf("sweep stats = %+v", st)
	}
}

func TestMultipleNamesPerIPOverwrite(t *testing.T) {
	// §4 Accuracy: a second domain on the same IP overwrites the first.
	c := newSyncCorrelator(DefaultConfig())
	c.IngestDNS(aRec(t0, "first.example", "198.51.100.60", 300))
	c.IngestDNS(aRec(t0.Add(time.Second), "second.example", "198.51.100.60", 300))
	cf := c.CorrelateFlow(flow(t0.Add(2*time.Second), "198.51.100.60", 10))
	if cf.Name != "second.example" {
		t.Fatalf("name = %q, want second.example (overwrite semantics)", cf.Name)
	}
}

func TestPipelineEndToEnd(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FillUpWorkers, cfg.LookUpWorkers, cfg.WriteWorkers = 2, 4, 2
	sink := NewCountingSink()
	c := New(cfg, WithSink(sink))
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- c.Run(ctx) }()
	const services = 20
	for i := 0; i < services; i++ {
		ok := c.OfferDNS(aRec(t0, fmt.Sprintf("svc%d.example", i), fmt.Sprintf("198.51.100.%d", i), 300))
		if !ok {
			t.Fatal("DNS offer dropped")
		}
	}
	// Let FillUp finish ingesting before flows arrive (live systems have
	// the same warm-up; the paper's streams run continuously). Queue depth
	// is not enough — a taken batch may still be mid-ingest — so wait on
	// the ingested-records counter.
	for c.Stats().DNSRecords < services {
		time.Sleep(time.Millisecond)
	}
	const flowsPerSvc = 50
	frs := make([]netflow.FlowRecord, 0, flowsPerSvc)
	for i := 0; i < services; i++ {
		frs = frs[:0]
		for j := 0; j < flowsPerSvc; j++ {
			frs = append(frs, flow(t0.Add(time.Second), fmt.Sprintf("198.51.100.%d", i), 100))
		}
		if accepted := c.OfferFlowBatch(frs); accepted != flowsPerSvc {
			t.Fatalf("flow batch: %d/%d accepted", accepted, flowsPerSvc)
		}
	}
	cancel() // graceful drain: every offered record reaches the sink
	if err := <-runDone; err != nil {
		t.Fatalf("Run = %v", err)
	}
	st := c.Stats()
	if st.Flows != services*flowsPerSvc {
		t.Fatalf("flows = %d", st.Flows)
	}
	if st.CorrelationRate() != 1.0 {
		t.Fatalf("correlation rate = %v, want 1.0", st.CorrelationRate())
	}
	if st.Written != services*flowsPerSvc {
		t.Fatalf("written = %d", st.Written)
	}
	counts := sink.Bytes()
	for i := 0; i < services; i++ {
		name := fmt.Sprintf("svc%d.example", i)
		if counts[name] != flowsPerSvc*100 {
			t.Fatalf("bytes[%s] = %d", name, counts[name])
		}
	}
	if st.MaxWriteDelayNs <= 0 {
		t.Fatal("write delay not observed")
	}
}

func TestRunSingleUseAndDrains(t *testing.T) {
	c := New(DefaultConfig())
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- c.Run(ctx) }()
	c.OfferDNS(aRec(t0, "a.example", "198.51.100.70", 60))
	cancel()
	if err := <-runDone; err != nil {
		t.Fatalf("Run = %v", err)
	}
	if st := c.Stats(); st.DNSRecords != 1 {
		t.Fatalf("DNSRecords = %d", st.DNSRecords)
	}
	// A Correlator's lifecycle is single-use.
	if err := c.Run(context.Background()); err != ErrAlreadyRunning {
		t.Fatalf("second Run = %v, want ErrAlreadyRunning", err)
	}
}

func TestRunEndsWhenSourcesComplete(t *testing.T) {
	// With finite sources attached, Run drains and returns on its own —
	// no cancellation needed.
	sink := NewCountingSink()
	src := stream.SourceFunc(func(ctx context.Context, in stream.Ingest) error {
		in.OfferDNS(aRec(t0, "svc.example", "198.51.100.71", 300))
		// Wait until the record is ingested (not merely dequeued) before
		// the flow that depends on it.
		for correlatorOf(in).Stats().DNSRecords < 1 {
			time.Sleep(time.Millisecond)
		}
		in.OfferFlow(flow(t0.Add(time.Second), "198.51.100.71", 500))
		return nil
	})
	c := New(DefaultConfig(), WithSink(sink), WithSources(src))
	done := make(chan error, 1)
	go func() { done <- c.Run(context.Background()) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after sources completed")
	}
	if got := sink.Bytes()["svc.example"]; got != 500 {
		t.Fatalf("bytes = %d", got)
	}
}

// correlatorOf recovers the concrete correlator behind the ingest façade
// in tests that need queue visibility.
func correlatorOf(in stream.Ingest) *Correlator { return in.(*Correlator) }

func TestRunSourceErrorFailsFast(t *testing.T) {
	boom := errors.New("wire fell over")
	failing := stream.SourceFunc(func(ctx context.Context, in stream.Ingest) error { return boom })
	// A healthy sibling source that only ends on cancellation: Run must
	// not wait for it once the failing source has died.
	forever := stream.SourceFunc(func(ctx context.Context, in stream.Ingest) error {
		<-ctx.Done()
		return nil
	})
	c := New(DefaultConfig(), WithSources(failing, forever))
	done := make(chan error, 1)
	go func() { done <- c.Run(context.Background()) }()
	select {
	case err := <-done:
		if !errors.Is(err, boom) {
			t.Fatalf("Run = %v, want %v", err, boom)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not fail fast on source error")
	}
}

func TestWithMetricsObserves(t *testing.T) {
	var mu sync.Mutex
	var snaps []Stats
	c := New(DefaultConfig(), WithMetrics(time.Millisecond, func(st Stats) {
		mu.Lock()
		snaps = append(snaps, st)
		mu.Unlock()
	}))
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- c.Run(ctx) }()
	c.OfferDNS(aRec(t0, "a.example", "198.51.100.72", 60))
	time.Sleep(20 * time.Millisecond)
	cancel()
	<-runDone
	mu.Lock()
	defer mu.Unlock()
	if len(snaps) == 0 {
		t.Fatal("no metrics observations")
	}
	if final := snaps[len(snaps)-1]; final.DNSRecords != 1 {
		t.Fatalf("final snapshot = %+v", final)
	}
}

func TestTSVSink(t *testing.T) {
	ctx := context.Background()
	var buf bytes.Buffer
	sink := NewTSVSink(&buf)
	err := sink.WriteBatch(ctx, []CorrelatedFlow{
		{Flow: flow(t0, "198.51.100.7", 1234), Name: "svc.example", Tier: TierActive, ChainLen: 2},
		{Flow: flow(t0, "198.51.100.8", 10)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.Contains(lines[0], "svc.example") || !strings.Contains(lines[0], "active") {
		t.Fatalf("line 0 = %q", lines[0])
	}
	if !strings.Contains(lines[1], "NULL") {
		t.Fatalf("line 1 = %q", lines[1])
	}
	// SkipMisses suppresses NULL rows.
	buf.Reset()
	sink2 := NewTSVSink(&buf)
	sink2.SkipMisses = true
	sink2.WriteBatch(ctx, []CorrelatedFlow{{Flow: flow(t0, "198.51.100.8", 10)}})
	sink2.Flush()
	if buf.Len() != 0 {
		t.Fatalf("SkipMisses wrote %q", buf.String())
	}
}

func TestMultiSink(t *testing.T) {
	a, b := NewCountingSink(), NewCountingSink()
	ms := MultiSink{a, b}
	ms.WriteBatch(context.Background(), []CorrelatedFlow{{Flow: flow(t0, "198.51.100.7", 5), Name: "x"}})
	if a.Bytes()["x"] != 5 || b.Bytes()["x"] != 5 {
		t.Fatal("MultiSink did not fan out")
	}
	if a.Flows()["x"] != 1 {
		t.Fatal("flow count missing")
	}
}

func TestChainHistogram(t *testing.T) {
	c := newSyncCorrelator(DefaultConfig())
	c.IngestDNS(cnameRec(t0, "svc.example", "edge.cdn", 300))
	c.IngestDNS(aRec(t0, "edge.cdn", "198.51.100.80", 60))
	c.IngestDNS(aRec(t0, "plain.example", "198.51.100.81", 60))
	c.CorrelateFlow(flow(t0, "198.51.100.80", 10)) // 1 hop
	c.CorrelateFlow(flow(t0, "198.51.100.81", 10)) // 0 hops
	st := c.Stats()
	if st.ChainHist[0] != 1 || st.ChainHist[1] != 1 {
		t.Fatalf("hist = %v", st.ChainHist)
	}
}

func TestConfigNormalization(t *testing.T) {
	c := New(Config{})
	cfg := c.Config()
	if cfg.NumSplit != DefaultNumSplit || cfg.AClearUpInterval != DefaultAClearUpInterval ||
		cfg.CNAMEChainLimit != DefaultCNAMEChainLimit || cfg.FillUpWorkers <= 0 {
		t.Fatalf("normalized = %+v", cfg)
	}
}

func TestConfigForVariantCoversAll(t *testing.T) {
	if len(AllVariants()) != 5 {
		t.Fatalf("variants = %v", AllVariants())
	}
	if !ConfigForVariant(VariantNoSplit).DisableSplit ||
		!ConfigForVariant(VariantNoClearUp).DisableClearUp ||
		!ConfigForVariant(VariantNoRotation).DisableRotation ||
		!ConfigForVariant(VariantNoLong).DisableLong ||
		!ConfigForVariant(VariantExactTTL).ExactTTL {
		t.Fatal("variant flags wrong")
	}
}

func TestTierString(t *testing.T) {
	for tier, want := range map[Tier]string{
		TierNone: "none", TierActive: "active", TierInactive: "inactive", TierLong: "long",
	} {
		if tier.String() != want {
			t.Errorf("%d = %q", tier, tier.String())
		}
	}
}

func TestStatsRates(t *testing.T) {
	var st Stats
	if st.CorrelationRate() != 0 || st.LossRate() != 0 || st.CorrelationRateFlows() != 0 {
		t.Fatal("empty stats rates nonzero")
	}
	st.FlowBytes, st.CorrelatedBytes = 1000, 817
	if st.CorrelationRate() != 0.817 {
		t.Fatalf("rate = %v", st.CorrelationRate())
	}
}

func BenchmarkIngestDNS(b *testing.B) {
	c := New(DefaultConfig())
	recs := make([]stream.DNSRecord, 1024)
	for i := range recs {
		recs[i] = aRec(t0, fmt.Sprintf("d%d.example.com", i), fmt.Sprintf("198.51.%d.%d", i/256, i%256), 300)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.IngestDNS(recs[i&1023])
	}
}

func BenchmarkCorrelateFlowHit(b *testing.B) {
	c := New(DefaultConfig())
	for i := 0; i < 1024; i++ {
		c.IngestDNS(aRec(t0, fmt.Sprintf("d%d.example.com", i), fmt.Sprintf("198.51.%d.%d", i/256, i%256), 300))
	}
	flows := make([]netflow.FlowRecord, 1024)
	for i := range flows {
		flows[i] = flow(t0, fmt.Sprintf("198.51.%d.%d", i/256, i%256), 1000)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.CorrelateFlow(flows[i&1023])
	}
}

func BenchmarkCorrelateFlowParallel(b *testing.B) {
	c := New(DefaultConfig())
	for i := 0; i < 1024; i++ {
		c.IngestDNS(aRec(t0, fmt.Sprintf("d%d.example.com", i), fmt.Sprintf("198.51.%d.%d", i/256, i%256), 300))
	}
	flows := make([]netflow.FlowRecord, 1024)
	for i := range flows {
		flows[i] = flow(t0, fmt.Sprintf("198.51.%d.%d", i/256, i%256), 1000)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			c.CorrelateFlow(flows[i&1023])
			i++
		}
	})
}

func TestLookupKeyModes(t *testing.T) {
	mk := func(k LookupKey) *Correlator {
		cfg := DefaultConfig()
		cfg.Key = k
		c := newSyncCorrelator(cfg)
		c.IngestDNS(aRec(t0, "svc.example", "198.51.100.90", 300))
		return c
	}
	inbound := flow(t0, "198.51.100.90", 100) // announced IP as source
	outbound := netflow.FlowRecord{           // announced IP as destination
		Timestamp: t0,
		SrcIP:     netip.MustParseAddr("10.1.2.3"),
		DstIP:     netip.MustParseAddr("198.51.100.90"),
		Packets:   1, Bytes: 100, Proto: netflow.ProtoTCP,
	}

	src := mk(LookupSource)
	if cf := src.CorrelateFlow(inbound); cf.Name != "svc.example" {
		t.Fatalf("source mode inbound = %+v", cf)
	}
	if cf := src.CorrelateFlow(outbound); cf.Correlated() {
		t.Fatalf("source mode matched destination: %+v", cf)
	}

	dst := mk(LookupDestination)
	if cf := dst.CorrelateFlow(outbound); cf.Name != "svc.example" {
		t.Fatalf("destination mode outbound = %+v", cf)
	}
	if cf := dst.CorrelateFlow(inbound); cf.Correlated() {
		t.Fatalf("destination mode matched source: %+v", cf)
	}

	both := mk(LookupBoth)
	if cf := both.CorrelateFlow(inbound); cf.Name != "svc.example" {
		t.Fatalf("both mode inbound = %+v", cf)
	}
	if cf := both.CorrelateFlow(outbound); cf.Name != "svc.example" {
		t.Fatalf("both mode outbound = %+v", cf)
	}
}

func TestLookupKeyStrings(t *testing.T) {
	if LookupSource.String() != "source" || LookupDestination.String() != "destination" ||
		LookupBoth.String() != "both" {
		t.Fatal("LookupKey strings wrong")
	}
}
