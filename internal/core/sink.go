package core

import (
	"bufio"
	"fmt"
	"io"
	"sync"
)

// TSVSink writes correlated flows as tab-separated lines:
//
//	timestamp \t srcIP \t dstIP \t bytes \t packets \t name \t tier \t chainLen
//
// This is the on-disk output format of the paper's Write workers. The sink
// is safe for concurrent use by multiple Write workers.
type TSVSink struct {
	mu sync.Mutex
	w  *bufio.Writer
	// SkipMisses drops flows without a resolved name instead of writing a
	// NULL row; the paper writes all results, so the default keeps them.
	SkipMisses bool
}

// NewTSVSink wraps w with buffering.
func NewTSVSink(w io.Writer) *TSVSink {
	return &TSVSink{w: bufio.NewWriterSize(w, 1<<16)}
}

// Write emits one row.
func (s *TSVSink) Write(cf CorrelatedFlow) {
	name := cf.Name
	if name == "" {
		if s.SkipMisses {
			return
		}
		name = "NULL"
	}
	s.mu.Lock()
	fmt.Fprintf(s.w, "%d\t%s\t%s\t%d\t%d\t%s\t%s\t%d\n",
		cf.Flow.Timestamp.Unix(), cf.Flow.SrcIP, cf.Flow.DstIP,
		cf.Flow.Bytes, cf.Flow.Packets, name, cf.Tier, cf.ChainLen)
	s.mu.Unlock()
}

// Flush drains the buffer; call after Stop.
func (s *TSVSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Flush()
}

// CountingSink tallies per-name byte counters; experiments use it to build
// per-service traffic series (Fig 4, Fig 5) without touching disk.
type CountingSink struct {
	mu    sync.Mutex
	bytes map[string]uint64
	flows map[string]uint64
}

// NewCountingSink returns an empty sink.
func NewCountingSink() *CountingSink {
	return &CountingSink{bytes: make(map[string]uint64), flows: make(map[string]uint64)}
}

// Write accumulates the flow under its resolved name ("" for misses).
func (s *CountingSink) Write(cf CorrelatedFlow) {
	s.mu.Lock()
	s.bytes[cf.Name] += cf.Flow.Bytes
	s.flows[cf.Name]++
	s.mu.Unlock()
}

// Bytes returns a copy of the per-name byte counters.
func (s *CountingSink) Bytes() map[string]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]uint64, len(s.bytes))
	for k, v := range s.bytes {
		out[k] = v
	}
	return out
}

// Flows returns a copy of the per-name flow counters.
func (s *CountingSink) Flows() map[string]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]uint64, len(s.flows))
	for k, v := range s.flows {
		out[k] = v
	}
	return out
}

// MultiSink fans a correlated flow out to several sinks.
type MultiSink []Sink

// Write forwards to every sink.
func (m MultiSink) Write(cf CorrelatedFlow) {
	for _, s := range m {
		s.Write(cf)
	}
}
