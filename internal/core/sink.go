package core

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
)

// Sink consumes correlated flows in batches. The Write workers accumulate
// size/time-bounded batches off the write queue, so one WriteBatch call
// amortizes one lock acquisition and one buffered write over the whole
// batch instead of paying both per record. Implementations must be safe
// for concurrent WriteBatch calls (Config.WriteWorkers > 1).
//
// The batch slice is only valid for the duration of the WriteBatch call —
// the worker reuses its backing array for the next batch. A sink that
// retains records past the call (an async exporter queue, for example)
// must copy them first.
//
// Flush forces buffered output down to the underlying writer; Close
// flushes and releases resources. Write workers call Flush after writing
// a partial (timer-bounded) batch so Config.WriteFlushInterval bounds
// end-to-end output latency; the correlator then calls Flush and Close
// once more at the end of Run's drain, in that order. After Close no
// further WriteBatch or Flush calls are made.
type Sink interface {
	WriteBatch(ctx context.Context, batch []CorrelatedFlow) error
	Flush() error
	Close() error
}

// SinkFunc adapts a per-record function to the Sink interface; Flush and
// Close are no-ops. Useful for tests and inline measurement taps.
type SinkFunc func(cf CorrelatedFlow)

// WriteBatch calls f for every record.
func (f SinkFunc) WriteBatch(_ context.Context, batch []CorrelatedFlow) error {
	for i := range batch {
		f(batch[i])
	}
	return nil
}

// Flush implements Sink.
func (f SinkFunc) Flush() error { return nil }

// Close implements Sink.
func (f SinkFunc) Close() error { return nil }

// DiscardSink drops every record — pure measurement runs where only the
// correlator's own counters matter.
type DiscardSink struct{}

// WriteBatch implements Sink.
func (DiscardSink) WriteBatch(context.Context, []CorrelatedFlow) error { return nil }

// Flush implements Sink.
func (DiscardSink) Flush() error { return nil }

// Close implements Sink.
func (DiscardSink) Close() error { return nil }

// TSVSink writes correlated flows as tab-separated lines:
//
//	timestamp \t srcIP \t dstIP \t bytes \t packets \t name \t tier \t chainLen
//
// This is the on-disk output format of the paper's Write workers. A batch
// takes the mutex once and appends rows to the buffered writer with
// allocation-free strconv formatting.
type TSVSink struct {
	mu  sync.Mutex
	w   *bufio.Writer
	row []byte
	// SkipMisses drops flows without a resolved name instead of writing a
	// NULL row; the paper writes all results, so the default keeps them.
	SkipMisses bool
}

// NewTSVSink wraps w with buffering.
func NewTSVSink(w io.Writer) *TSVSink {
	return &TSVSink{w: bufio.NewWriterSize(w, 1<<16), row: make([]byte, 0, 128)}
}

// appendRow formats one output row into b.
func appendRow(b []byte, cf *CorrelatedFlow, name string) []byte {
	b = strconv.AppendInt(b, cf.Flow.Timestamp.Unix(), 10)
	b = append(b, '\t')
	b = cf.Flow.SrcIP.AppendTo(b)
	b = append(b, '\t')
	b = cf.Flow.DstIP.AppendTo(b)
	b = append(b, '\t')
	b = strconv.AppendUint(b, cf.Flow.Bytes, 10)
	b = append(b, '\t')
	b = strconv.AppendUint(b, cf.Flow.Packets, 10)
	b = append(b, '\t')
	b = append(b, name...)
	b = append(b, '\t')
	b = append(b, cf.Tier.String()...)
	b = append(b, '\t')
	b = strconv.AppendInt(b, int64(cf.ChainLen), 10)
	b = append(b, '\n')
	return b
}

// WriteBatch emits one row per record under a single lock acquisition.
func (s *TSVSink) WriteBatch(_ context.Context, batch []CorrelatedFlow) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range batch {
		cf := &batch[i]
		name := cf.Name
		if name == "" {
			if s.SkipMisses {
				continue
			}
			name = "NULL"
		}
		s.row = appendRow(s.row[:0], cf, name)
		if _, err := s.w.Write(s.row); err != nil {
			return fmt.Errorf("core: tsv sink: %w", err)
		}
	}
	return nil
}

// Flush drains the buffer.
func (s *TSVSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Flush()
}

// Close flushes; the underlying writer's lifecycle belongs to the caller.
func (s *TSVSink) Close() error { return s.Flush() }

// jsonRow is the wire shape of one JSONSink line.
type jsonRow struct {
	Timestamp int64  `json:"ts"`
	SrcIP     string `json:"src"`
	DstIP     string `json:"dst"`
	Bytes     uint64 `json:"bytes"`
	Packets   uint64 `json:"packets"`
	Name      string `json:"name,omitempty"`
	Tier      string `json:"tier,omitempty"`
	ChainLen  int    `json:"chain,omitempty"`
}

// JSONSink writes one JSON object per line (JSONL), the format downstream
// joiners (BGP attribution, blocklist scoring) consume without a TSV
// schema contract.
type JSONSink struct {
	mu  sync.Mutex
	w   *bufio.Writer
	enc *json.Encoder
	// SkipMisses drops flows without a resolved name.
	SkipMisses bool
}

// NewJSONSink wraps w with buffering.
func NewJSONSink(w io.Writer) *JSONSink {
	bw := bufio.NewWriterSize(w, 1<<16)
	return &JSONSink{w: bw, enc: json.NewEncoder(bw)}
}

// WriteBatch emits one JSON line per record under a single lock.
func (s *JSONSink) WriteBatch(_ context.Context, batch []CorrelatedFlow) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range batch {
		cf := &batch[i]
		if cf.Name == "" && s.SkipMisses {
			continue
		}
		row := jsonRow{
			Timestamp: cf.Flow.Timestamp.Unix(),
			SrcIP:     cf.Flow.SrcIP.String(),
			DstIP:     cf.Flow.DstIP.String(),
			Bytes:     cf.Flow.Bytes,
			Packets:   cf.Flow.Packets,
			Name:      cf.Name,
			ChainLen:  cf.ChainLen,
		}
		if cf.Tier != TierNone {
			row.Tier = cf.Tier.String()
		}
		if err := s.enc.Encode(&row); err != nil {
			return fmt.Errorf("core: json sink: %w", err)
		}
	}
	return nil
}

// Flush drains the buffer.
func (s *JSONSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Flush()
}

// Close flushes; the underlying writer's lifecycle belongs to the caller.
func (s *JSONSink) Close() error { return s.Flush() }

// CountingSink tallies per-name byte counters; experiments use it to build
// per-service traffic series (Fig 4, Fig 5) without touching disk.
type CountingSink struct {
	mu    sync.Mutex
	bytes map[string]uint64
	flows map[string]uint64
}

// NewCountingSink returns an empty sink.
func NewCountingSink() *CountingSink {
	return &CountingSink{bytes: make(map[string]uint64), flows: make(map[string]uint64)}
}

// WriteBatch accumulates every flow under its resolved name ("" for
// misses) with one lock acquisition.
func (s *CountingSink) WriteBatch(_ context.Context, batch []CorrelatedFlow) error {
	s.mu.Lock()
	for i := range batch {
		s.bytes[batch[i].Name] += batch[i].Flow.Bytes
		s.flows[batch[i].Name]++
	}
	s.mu.Unlock()
	return nil
}

// Add accumulates a single flow — the synchronous-replay convenience the
// experiments use when correlating record by record.
func (s *CountingSink) Add(cf CorrelatedFlow) {
	s.mu.Lock()
	s.bytes[cf.Name] += cf.Flow.Bytes
	s.flows[cf.Name]++
	s.mu.Unlock()
}

// Flush implements Sink.
func (s *CountingSink) Flush() error { return nil }

// Close implements Sink.
func (s *CountingSink) Close() error { return nil }

// Bytes returns a copy of the per-name byte counters.
func (s *CountingSink) Bytes() map[string]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]uint64, len(s.bytes))
	for k, v := range s.bytes {
		out[k] = v
	}
	return out
}

// Flows returns a copy of the per-name flow counters.
func (s *CountingSink) Flows() map[string]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]uint64, len(s.flows))
	for k, v := range s.flows {
		out[k] = v
	}
	return out
}

// MultiSink fans each batch out to several sinks.
type MultiSink []Sink

// WriteBatch forwards the batch to every sink; all sinks see the batch
// even when an earlier one fails, and the errors are joined.
func (m MultiSink) WriteBatch(ctx context.Context, batch []CorrelatedFlow) error {
	var errs []error
	for _, s := range m {
		if err := s.WriteBatch(ctx, batch); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Flush flushes every sink.
func (m MultiSink) Flush() error {
	var errs []error
	for _, s := range m {
		if err := s.Flush(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Close closes every sink.
func (m MultiSink) Close() error {
	var errs []error
	for _, s := range m {
		if err := s.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// --- sink registry ---

// SinkOptions carries the construction inputs registered factories use.
type SinkOptions struct {
	// W is the destination for record-writing sinks (tsv, json).
	W io.Writer
	// SkipMisses drops rows without a resolved name.
	SkipMisses bool
	// Children are the fan-out targets of the "multi" sink.
	Children []Sink
	// URL is the remote endpoint of network-backed sinks (the "influx"
	// sink POSTs line-protocol batches there); sinks that write to W
	// ignore it.
	URL string
	// Measurement names the time-series measurement for sinks that need
	// one ("" = the sink's default).
	Measurement string
}

// SinkFactory builds a sink from options.
type SinkFactory func(opts SinkOptions) (Sink, error)

// sinkEntry is one registry record: the factory plus the metadata callers
// need to wire the sink correctly.
type sinkEntry struct {
	factory SinkFactory
	// needsWriter reports whether the sink writes records to
	// SinkOptions.W (and therefore wants a file or stdout).
	needsWriter bool
}

var (
	sinkMu       sync.RWMutex
	sinkRegistry = map[string]sinkEntry{
		"tsv": {needsWriter: true, factory: func(o SinkOptions) (Sink, error) {
			if o.W == nil {
				return nil, errors.New("core: tsv sink requires a writer")
			}
			s := NewTSVSink(o.W)
			s.SkipMisses = o.SkipMisses
			return s, nil
		}},
		"json": {needsWriter: true, factory: func(o SinkOptions) (Sink, error) {
			if o.W == nil {
				return nil, errors.New("core: json sink requires a writer")
			}
			s := NewJSONSink(o.W)
			s.SkipMisses = o.SkipMisses
			return s, nil
		}},
		"counting": {factory: func(SinkOptions) (Sink, error) { return NewCountingSink(), nil }},
		"discard":  {factory: func(SinkOptions) (Sink, error) { return DiscardSink{}, nil }},
		"multi": {factory: func(o SinkOptions) (Sink, error) {
			if len(o.Children) == 0 {
				return nil, errors.New("core: multi sink requires children")
			}
			return MultiSink(o.Children), nil
		}},
	}
)

// RegisterSink adds (or replaces) a named sink factory. New backends
// (Kafka, ClickHouse, …) register here and become selectable from the
// daemon configuration without touching the pipeline. needsWriter declares
// whether the sink consumes SinkOptions.W, so config validation and output
// wiring treat it correctly.
func RegisterSink(name string, needsWriter bool, f SinkFactory) {
	sinkMu.Lock()
	defer sinkMu.Unlock()
	sinkRegistry[name] = sinkEntry{factory: f, needsWriter: needsWriter}
}

// SinkNeedsWriter reports whether the named sink writes records through
// SinkOptions.W. The empty name means "tsv"; unknown names report false.
func SinkNeedsWriter(name string) bool {
	if name == "" {
		name = "tsv"
	}
	sinkMu.RLock()
	defer sinkMu.RUnlock()
	return sinkRegistry[name].needsWriter
}

// NewSinkByName builds a registered sink. The empty name means "tsv".
func NewSinkByName(name string, opts SinkOptions) (Sink, error) {
	if name == "" {
		name = "tsv"
	}
	sinkMu.RLock()
	e, ok := sinkRegistry[name]
	sinkMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("core: unknown sink %q (have %v)", name, SinkNames())
	}
	return e.factory(opts)
}

// SinkNames lists the registered sink names, sorted.
func SinkNames() []string {
	sinkMu.RLock()
	defer sinkMu.RUnlock()
	names := make([]string, 0, len(sinkRegistry))
	for name := range sinkRegistry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
