// Package core implements the FlowDNS correlator — the paper's primary
// contribution (§3): a real-time join between DNS response streams and
// NetFlow streams that attributes each flow's source IP to the service
// (domain name) it belongs to.
//
// The pipeline is the paper's Figure 1: FillUp workers drain the DNS queue
// into sharded answer→query hashmaps; LookUp workers drain the NetFlow
// queue, resolve each source IP through the IP-NAME maps and then walk the
// NAME-CNAME maps backwards (up to 6 hops) toward the original service
// name; Write workers emit correlated flows to a sink. All state lives in
// active/inactive/long map generations rotated on the clear-up intervals
// (Algorithms 1 and 2, Table 1).
package core

import "time"

// Defaults from the paper (Table 1, §3.1, §3.3, Appendix A.6).
const (
	DefaultNumSplit         = 10
	DefaultAClearUpInterval = 3600 * time.Second
	DefaultCClearUpInterval = 7200 * time.Second
	DefaultCNAMEChainLimit  = 6
	DefaultQueueCapacity    = 65536
	// DefaultWriteBatchSize is how many correlated flows a Write worker
	// accumulates per sink WriteBatch call: one lock acquisition and one
	// buffered write amortized over the batch.
	DefaultWriteBatchSize = 256
	// DefaultWriteFlushInterval bounds how long a Write worker lingers for
	// a batch to fill before handing a partial batch to the sink — the
	// latency ceiling batching adds under light load.
	DefaultWriteFlushInterval = 50 * time.Millisecond
	// DefaultSnapshotInterval is the checkpoint cadence when SnapshotPath
	// is set without SnapshotEvery. Five minutes keeps the restart warmth
	// gap well under the shortest common answer TTLs' refresh horizon while
	// the checkpoint cost (one lock-striped store scan plus a sequential
	// file write) stays negligible at that rate.
	DefaultSnapshotInterval = 5 * time.Minute

	// DefaultRestartBackoffMin/Max bound the supervised-restart backoff: a
	// first restart after 100 ms keeps a transient fault's outage short,
	// doubling to a 5 s ceiling so a hard-crashing component cannot spin.
	DefaultRestartBackoffMin = 100 * time.Millisecond
	DefaultRestartBackoffMax = 5 * time.Second
	// DefaultSampleLowWater / DefaultSampleHighWater are the watermark
	// defaults applied when sampling is enabled (SampleMaxShed > 0) without
	// explicit watermarks: shedding starts at half-full buffers and reaches
	// the configured ceiling at 90 % fill, leaving the last tenth of the
	// buffer to absorb bursts while the sampler is already braking.
	DefaultSampleLowWater  = 0.5
	DefaultSampleHighWater = 0.9
)

// LookupKey selects which flow address the LookUp workers resolve. The
// paper's deployment analyzes traffic sources, "nonetheless, destination
// address or both source and destination addresses can be used with minor
// modifications" (§3.1).
type LookupKey int

// Lookup key modes.
const (
	// LookupSource resolves the flow's source IP (the paper's deployment).
	LookupSource LookupKey = iota
	// LookupDestination resolves the destination IP (e.g. for egress
	// attribution: which service are subscribers sending traffic to).
	LookupDestination
	// LookupBoth tries the source first and falls back to the destination.
	LookupBoth
)

// String names the mode.
func (k LookupKey) String() string {
	switch k {
	case LookupDestination:
		return "destination"
	case LookupBoth:
		return "both"
	default:
		return "source"
	}
}

// Config controls a Correlator. The zero value is not valid; start from
// DefaultConfig (the paper's "Main" benchmark) or one of the variant
// constructors and adjust.
type Config struct {
	// NumSplit is the number of splits for the IP-NAME hashmaps (Table 1:
	// NUM_SPLIT, empirically 10 in the paper's deployment). The lane-major
	// store layout requires a whole number of splits per lane, so
	// normalization rounds NumSplit up to the next multiple of Lanes;
	// Config() reports the effective value.
	NumSplit int
	// AClearUpInterval clears IP-NAME maps (paper: 3600 s, the 99th
	// percentile of A/AAAA TTLs).
	AClearUpInterval time.Duration
	// CClearUpInterval clears NAME-CNAME maps (paper: 7200 s).
	CClearUpInterval time.Duration
	// CNAMEChainLimit bounds the CNAME walk (paper: 6 covers >99 %).
	CNAMEChainLimit int

	// Lanes is the number of independent correlation lanes the LookUp
	// stage is sharded into. Flows are partitioned onto lanes by a hash of
	// the destination IP at offer time (same dst IP → same lane, always);
	// each lane owns its own lookup queue, its own workers, and — via the
	// lane-major split layout — its own slice of the IP-NAME store splits.
	// 0 falls back to the paper default: one lane per split (NumSplit,
	// Table 1), mirroring the per-split design. The NoSplit ablation
	// collapses to a single lane.
	Lanes int

	// FillLanes is the number of independent fill lanes the FillUp stage is
	// sharded into. DNS records are partitioned onto fill lanes by a hash
	// of the A/AAAA answer address at offer time — the same hash that
	// labels the record's store split — so with FillLanes == Lanes (the
	// default when 0) each fill lane writes only its own lane's slice of
	// the IP-NAME splits and FillUp workers never contend on the same
	// generation shards. The NoSplit ablation collapses to a single fill
	// lane.
	FillLanes int

	// Key selects which flow address is resolved (default: source, as in
	// the paper's deployment).
	Key LookupKey

	// Worker counts per stage. The paper allocates "multiple FillUp workers
	// ... to each DNS stream" and likewise for LookUp; these are the
	// totals. LookUp workers are distributed across lanes; since a lane
	// without a worker would never drain, the effective LookUp total is
	// raised to Lanes when LookUpWorkers < Lanes.
	FillUpWorkers int
	LookUpWorkers int
	WriteWorkers  int

	// Queue capacities; overflowing queues drop records (stream loss).
	// LookQueueCap is the total across all lanes, divided evenly (each
	// lane gets LookQueueCap/Lanes, minimum 1). A single hot destination
	// can buffer up to one lane's share before that lane drops — less
	// absorption than the pre-lane shared queue gave a single bursty
	// destination — so operators with skewed traffic should raise this
	// and watch LaneDepths.
	FillQueueCap  int
	LookQueueCap  int
	WriteQueueCap int

	// Adaptive overload shedding (the production inverse of the paper's
	// "keep the buffer usage stable to avoid any loss" goal: when loss is
	// unavoidable, make it deliberate, smooth, and accounted). When
	// SampleMaxShed > 0 every stage queue gets a sampler that starts
	// shedding offered records once its buffer passes SampleLowWater fill,
	// ramping linearly to the SampleMaxShed fraction at SampleHighWater.
	// Shed records are counted in the queues' Stats.Sampled — never
	// silently lost — and surface in Stats.LossRate, /metrics, and
	// /query/health. SampleMaxShed == 0 (the default) disables sampling and
	// keeps the historical drop-on-overflow behaviour.
	SampleLowWater  float64
	SampleHighWater float64
	SampleMaxShed   float64

	// WriteBatchSize bounds how many correlated flows a Write worker hands
	// to the sink per WriteBatch call.
	WriteBatchSize int
	// WriteFlushInterval bounds how long a Write worker waits for a batch
	// to fill before flushing a partial one.
	WriteFlushInterval time.Duration

	// Ablation switches (§4 benchmarks).
	DisableSplit    bool // "No Split": one IP-NAME map instead of NumSplit
	DisableClearUp  bool // "No Clear-Up": maps are never cleared
	DisableRotation bool // "No Rotation": clear without keeping an inactive copy
	DisableLong     bool // "No Long Hashmaps": long-TTL records go to Active

	// ExactTTL enables the Appendix A.8 anti-benchmark: records carry their
	// exact expiry, lookups check it, and a scan-based sweeper removes
	// expired entries every ExactTTLSweepInterval, write-locking every
	// shard. The paper measured >90 % stream loss and ~2x memory this way.
	ExactTTL              bool
	ExactTTLSweepInterval time.Duration

	// SnapshotPath enables warm-restart checkpointing: New restores the
	// correlation store from this file on boot (expired entries dropped,
	// names re-interned), and Run writes it back every SnapshotEvery plus
	// once at the end of the graceful drain. Writes are atomic (temp file +
	// rename), so a crash mid-checkpoint never damages the previous one.
	// Empty disables checkpointing.
	SnapshotPath string
	// SnapshotEvery is the checkpoint cadence; 0 means
	// DefaultSnapshotInterval. Shorter intervals narrow the answer-state
	// window a crash loses at the cost of re-scanning the store more often.
	SnapshotEvery time.Duration

	// RestartBackoffMin/Max bound the supervised-restart backoff: when a
	// stage worker or attached Service dies abnormally (panic, early
	// return), it is restarted after RestartBackoffMin, doubling per
	// consecutive failure up to RestartBackoffMax. Zero values take the
	// defaults (100 ms / 5 s).
	RestartBackoffMin time.Duration
	RestartBackoffMax time.Duration

	// Query-plane knobs. The correlator itself never reads these — the
	// daemon wires the window store and query server from them (the serving
	// plane depends on the rollup layer, which depends on this package) —
	// but they live here so every frontend (flags, config file, embedding
	// programs) shares one source of truth, like the fields above.

	// IngestBatch is the number of datagrams a UDP flow source drains per
	// batched socket read (the recvmmsg ring size): each batch costs one
	// syscall and one lookup-queue lock regardless of how many packets it
	// carries. 0 uses the stream default (32); 1 disables batching and
	// forces the classic one-read-per-datagram loop, which is also the
	// automatic fallback on platforms or connections without batch-read
	// support. Like the query knobs below, the correlator itself never
	// reads this — the daemon applies it to every UDP source it wires.
	IngestBatch int

	// DNSIdleTimeout bounds how long a DNS TCP stream may go silent before
	// the collector closes it (counted in the source's Timeouts stat). 0
	// disables the bound. The correlator itself never reads this — the
	// daemon applies it to every DNS listener it wires.
	DNSIdleTimeout time.Duration

	// QueryAddr is the query-plane HTTP listen address (/query/*, /metrics,
	// /rollups). Empty disables the server.
	QueryAddr string
	// StoreDir is the window store's partition directory. Empty disables
	// on-disk persistence of sealed rollup windows.
	StoreDir string
	// Retention bounds how far back stored partitions are kept; 0 keeps
	// everything.
	Retention time.Duration
	// CompactAfter is how long after a partition's interval ends before its
	// windows are compacted; 0 uses the store default, negative disables.
	CompactAfter time.Duration
}

// DefaultConfig returns the paper's Main configuration.
func DefaultConfig() Config {
	return Config{
		NumSplit:              DefaultNumSplit,
		AClearUpInterval:      DefaultAClearUpInterval,
		CClearUpInterval:      DefaultCClearUpInterval,
		CNAMEChainLimit:       DefaultCNAMEChainLimit,
		FillUpWorkers:         4,
		LookUpWorkers:         DefaultNumSplit, // one per default lane; every lane needs a worker
		WriteWorkers:          2,
		FillQueueCap:          DefaultQueueCapacity,
		LookQueueCap:          DefaultQueueCapacity,
		WriteQueueCap:         DefaultQueueCapacity,
		WriteBatchSize:        DefaultWriteBatchSize,
		WriteFlushInterval:    DefaultWriteFlushInterval,
		ExactTTLSweepInterval: 60 * time.Second,
	}
}

// Variant names the ablation benchmarks of §4 plus the Appendix A.8 mode.
type Variant string

// The benchmark variants evaluated in the paper.
const (
	VariantMain       Variant = "Main"
	VariantNoSplit    Variant = "NoSplit"
	VariantNoClearUp  Variant = "NoClearUp"
	VariantNoRotation Variant = "NoRotation"
	VariantNoLong     Variant = "NoLong"
	VariantExactTTL   Variant = "ExactTTL"
)

// AllVariants lists the figure-3 benchmark variants in the paper's order.
func AllVariants() []Variant {
	return []Variant{VariantMain, VariantNoClearUp, VariantNoLong, VariantNoRotation, VariantNoSplit}
}

// ConfigForVariant returns DefaultConfig with the variant's ablation applied.
func ConfigForVariant(v Variant) Config {
	cfg := DefaultConfig()
	switch v {
	case VariantNoSplit:
		cfg.DisableSplit = true
	case VariantNoClearUp:
		cfg.DisableClearUp = true
	case VariantNoRotation:
		cfg.DisableRotation = true
	case VariantNoLong:
		cfg.DisableLong = true
	case VariantExactTTL:
		cfg.ExactTTL = true
	}
	return cfg
}

// normalized fills unset fields with defaults so New never builds a broken
// pipeline from a partially specified config.
func (c Config) normalized() Config {
	d := DefaultConfig()
	if c.NumSplit <= 0 {
		c.NumSplit = d.NumSplit
	}
	if c.AClearUpInterval <= 0 {
		c.AClearUpInterval = d.AClearUpInterval
	}
	if c.CClearUpInterval <= 0 {
		c.CClearUpInterval = d.CClearUpInterval
	}
	if c.CNAMEChainLimit <= 0 {
		c.CNAMEChainLimit = d.CNAMEChainLimit
	}
	if c.FillUpWorkers <= 0 {
		c.FillUpWorkers = d.FillUpWorkers
	}
	if c.LookUpWorkers <= 0 {
		c.LookUpWorkers = d.LookUpWorkers
	}
	if c.WriteWorkers <= 0 {
		c.WriteWorkers = d.WriteWorkers
	}
	if c.FillQueueCap <= 0 {
		c.FillQueueCap = d.FillQueueCap
	}
	if c.LookQueueCap <= 0 {
		c.LookQueueCap = d.LookQueueCap
	}
	if c.WriteQueueCap <= 0 {
		c.WriteQueueCap = d.WriteQueueCap
	}
	if c.WriteBatchSize <= 0 {
		c.WriteBatchSize = d.WriteBatchSize
	}
	if c.WriteFlushInterval <= 0 {
		c.WriteFlushInterval = d.WriteFlushInterval
	}
	if c.ExactTTLSweepInterval <= 0 {
		c.ExactTTLSweepInterval = d.ExactTTLSweepInterval
	}
	if c.SampleMaxShed > 0 {
		if c.SampleMaxShed > 1 {
			c.SampleMaxShed = 1
		}
		if c.SampleLowWater <= 0 {
			c.SampleLowWater = DefaultSampleLowWater
		}
		if c.SampleHighWater <= 0 {
			c.SampleHighWater = DefaultSampleHighWater
		}
		if c.SampleHighWater > 1 {
			c.SampleHighWater = 1
		}
	}
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = DefaultSnapshotInterval
	}
	if c.RestartBackoffMin <= 0 {
		c.RestartBackoffMin = DefaultRestartBackoffMin
	}
	if c.RestartBackoffMax < c.RestartBackoffMin {
		c.RestartBackoffMax = DefaultRestartBackoffMax
		if c.RestartBackoffMax < c.RestartBackoffMin {
			c.RestartBackoffMax = c.RestartBackoffMin
		}
	}
	if c.DisableSplit {
		c.NumSplit = 1
	}
	if c.Lanes <= 0 {
		// Paper-default fallback: one correlation lane per split.
		c.Lanes = c.NumSplit
	}
	if c.DisableSplit {
		c.Lanes = 1
	}
	// The lane-major store layout needs an equal number of splits per
	// lane; round NumSplit up to the next multiple of Lanes so Config()
	// reports the split count actually allocated.
	if rem := c.NumSplit % c.Lanes; rem != 0 {
		c.NumSplit += c.Lanes - rem
	}
	if c.FillLanes <= 0 {
		// Default: mirror the correlation lanes, aligning the fill
		// partition with the lane-major split layout.
		c.FillLanes = c.Lanes
	}
	if c.DisableSplit {
		c.FillLanes = 1
	}
	return c
}
