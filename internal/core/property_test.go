package core

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/dnsname"
	"repro/internal/dnswire"
	"repro/internal/stream"
)

// Property: any name the correlator resolves was previously ingested as a
// query (the value side of some hashmap) — correlation never invents
// names.
func TestQuickResolvedNamesWereIngested(t *testing.T) {
	f := func(seed int64, nRecords uint8, nFlows uint8) bool {
		c := New(DefaultConfig())
		r := newDetRand(seed)
		ingested := map[string]bool{}
		ips := make([]string, 0, nRecords)
		for i := 0; i < int(nRecords)+1; i++ {
			q := fmt.Sprintf("name%d.example", r.next()%32)
			switch r.next() % 3 {
			case 0, 1:
				ip := fmt.Sprintf("198.51.%d.%d", r.next()%4, r.next()%64)
				c.IngestDNS(stream.DNSRecord{Timestamp: t0, Query: q,
					RType: dnswire.TypeA, TTL: uint32(r.next() % 9000), Answer: ip})
				ips = append(ips, ip)
			default:
				target := fmt.Sprintf("name%d.example", r.next()%32)
				c.IngestDNS(stream.DNSRecord{Timestamp: t0, Query: q,
					RType: dnswire.TypeCNAME, TTL: uint32(r.next() % 9000), Answer: target})
			}
			ingested[dnsname.Normalize(q)] = true
		}
		for i := 0; i < int(nFlows)+1 && len(ips) > 0; i++ {
			ip := ips[int(r.next()%uint64(len(ips)))]
			cf := c.CorrelateFlow(flow(t0.Add(time.Second), ip, 10))
			if cf.Correlated() && !ingested[cf.Name] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: stats invariants hold under any ingest/correlate interleaving:
// Correlated + Misses + FlowInvalid == Flows, CorrelatedBytes <= FlowBytes,
// and the chain histogram sums to Correlated.
func TestQuickStatsInvariants(t *testing.T) {
	f := func(seed int64, ops uint8) bool {
		c := New(DefaultConfig())
		r := newDetRand(seed)
		for i := 0; i < int(ops)+1; i++ {
			switch r.next() % 4 {
			case 0:
				c.IngestDNS(stream.DNSRecord{Timestamp: t0,
					Query:  fmt.Sprintf("n%d.example", r.next()%16),
					RType:  dnswire.TypeA,
					TTL:    60,
					Answer: fmt.Sprintf("198.51.0.%d", r.next()%32)})
			case 1:
				c.IngestDNS(stream.DNSRecord{}) // invalid
			case 2:
				c.CorrelateFlow(flow(t0, fmt.Sprintf("198.51.0.%d", r.next()%32), uint64(r.next()%5000)))
			default:
				c.CorrelateFlow(flow(t0, fmt.Sprintf("203.0.113.%d", r.next()%32), uint64(r.next()%5000)))
			}
		}
		st := c.Stats()
		if st.Correlated+st.Misses+st.FlowInvalid != st.Flows {
			return false
		}
		if st.CorrelatedBytes > st.FlowBytes {
			return false
		}
		var hist uint64
		for _, h := range st.ChainHist {
			hist += h
		}
		return hist == st.Correlated
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: in exact-TTL mode, a record never matches after its TTL has
// passed, for any TTL and any lag.
func TestQuickExactTTLNeverMatchesExpired(t *testing.T) {
	f := func(ttl uint16, lagSec uint16) bool {
		cfg := ConfigForVariant(VariantExactTTL)
		c := New(cfg)
		c.IngestDNS(stream.DNSRecord{Timestamp: t0, Query: "q.example",
			RType: dnswire.TypeA, TTL: uint32(ttl), Answer: "198.51.100.200"})
		lag := time.Duration(lagSec) * time.Second
		cf := c.CorrelateFlow(flow(t0.Add(lag), "198.51.100.200", 10))
		expired := lag > time.Duration(ttl)*time.Second
		if expired && cf.Correlated() {
			return false
		}
		if !expired && !cf.Correlated() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// detRand is a tiny deterministic generator for property tests (keeps the
// quick-generated seed as the only entropy source).
type detRand struct{ s uint64 }

func newDetRand(seed int64) *detRand { return &detRand{s: uint64(seed)*2654435761 + 1} }

func (d *detRand) next() uint64 {
	d.s ^= d.s << 13
	d.s ^= d.s >> 7
	d.s ^= d.s << 17
	return d.s
}
