// Package metrics provides the measurement side of the evaluation: process
// CPU and heap sampling for the resource figures (Figs 2 and 3) and
// ECDF/CDF helpers for the distribution figures (Figs 5, 6, 8, 9).
//
// The paper reports CPU as percentages of a core (2500 % ≈ 25 cores busy)
// and memory in GB on a 128-core machine. We sample the same primitives at
// laptop scale: getrusage(2) user+system time deltas for CPU, and
// runtime.ReadMemStats heap numbers for memory. Absolute values differ from
// the paper's testbed by construction; the figures compare *shapes* across
// time and across variants.
package metrics

import (
	"runtime"
	"sort"
	"syscall"
	"time"
)

// CPUSampler measures process CPU usage (user+system) between samples.
type CPUSampler struct {
	lastCPU  time.Duration
	lastWall time.Time
}

// NewCPUSampler primes the sampler at the current instant.
func NewCPUSampler() *CPUSampler {
	s := &CPUSampler{}
	s.lastCPU = processCPU()
	s.lastWall = time.Now()
	return s
}

// Sample returns the CPU utilization since the previous sample, in percent
// of one core (100 = one core fully busy), and resets the window.
func (s *CPUSampler) Sample() float64 {
	nowCPU := processCPU()
	nowWall := time.Now()
	dCPU := nowCPU - s.lastCPU
	dWall := nowWall.Sub(s.lastWall)
	s.lastCPU, s.lastWall = nowCPU, nowWall
	if dWall <= 0 {
		return 0
	}
	return 100 * float64(dCPU) / float64(dWall)
}

// processCPU returns total user+system CPU time consumed by the process.
func processCPU() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return time.Duration(ru.Utime.Nano() + ru.Stime.Nano())
}

// HeapMB returns the live heap size in MiB.
func HeapMB() float64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return float64(ms.HeapAlloc) / (1 << 20)
}

// Point is one sample of a time series.
type Point struct {
	T time.Time
	V float64
}

// Series is an append-only time series with summary helpers.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a sample.
func (s *Series) Add(t time.Time, v float64) {
	s.Points = append(s.Points, Point{T: t, V: v})
}

// Min returns the smallest sample value (0 for an empty series).
func (s *Series) Min() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	m := s.Points[0].V
	for _, p := range s.Points[1:] {
		if p.V < m {
			m = p.V
		}
	}
	return m
}

// Max returns the largest sample value (0 for an empty series).
func (s *Series) Max() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	m := s.Points[0].V
	for _, p := range s.Points[1:] {
		if p.V > m {
			m = p.V
		}
	}
	return m
}

// Mean returns the arithmetic mean (0 for an empty series).
func (s *Series) Mean() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range s.Points {
		sum += p.V
	}
	return sum / float64(len(s.Points))
}

// Last returns the final sample value (0 for an empty series).
func (s *Series) Last() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	return s.Points[len(s.Points)-1].V
}

// ECDF is an empirical cumulative distribution over float64 samples.
type ECDF struct {
	sorted bool
	xs     []float64
}

// NewECDF returns an empty distribution.
func NewECDF() *ECDF { return &ECDF{} }

// Add inserts a sample.
func (e *ECDF) Add(x float64) {
	e.xs = append(e.xs, x)
	e.sorted = false
}

// AddN inserts x with multiplicity n (used for weighted counts).
func (e *ECDF) AddN(x float64, n int) {
	for i := 0; i < n; i++ {
		e.xs = append(e.xs, x)
	}
	e.sorted = false
}

// N returns the sample count.
func (e *ECDF) N() int { return len(e.xs) }

func (e *ECDF) ensureSorted() {
	if !e.sorted {
		sort.Float64s(e.xs)
		e.sorted = true
	}
}

// At returns P(X <= x), 0 for an empty distribution.
func (e *ECDF) At(x float64) float64 {
	if len(e.xs) == 0 {
		return 0
	}
	e.ensureSorted()
	// First index with xs[i] > x.
	i := sort.SearchFloat64s(e.xs, x)
	for i < len(e.xs) && e.xs[i] == x {
		i++
	}
	return float64(i) / float64(len(e.xs))
}

// Quantile returns the q-quantile (0 <= q <= 1) by the nearest-rank method.
func (e *ECDF) Quantile(q float64) float64 {
	if len(e.xs) == 0 {
		return 0
	}
	e.ensureSorted()
	if q <= 0 {
		return e.xs[0]
	}
	if q >= 1 {
		return e.xs[len(e.xs)-1]
	}
	idx := int(q*float64(len(e.xs))) - 1
	if idx < 0 {
		idx = 0
	}
	return e.xs[idx]
}

// Steps returns (x, P(X<=x)) pairs at the distinct sample values — the
// plottable ECDF curve.
func (e *ECDF) Steps() []Point2 {
	if len(e.xs) == 0 {
		return nil
	}
	e.ensureSorted()
	var out []Point2
	n := float64(len(e.xs))
	for i := 0; i < len(e.xs); i++ {
		if i+1 == len(e.xs) || e.xs[i+1] != e.xs[i] {
			out = append(out, Point2{X: e.xs[i], Y: float64(i+1) / n})
		}
	}
	return out
}

// Point2 is an (x, y) pair of a plottable curve.
type Point2 struct {
	X, Y float64
}
