package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// PromWriter emits Prometheus text exposition format 0.0.4 — the subset a
// scrape target needs (# HELP, # TYPE, counter/gauge samples with optional
// labels) — using only the standard library. Families are buffered and
// written in registration order; samples within a family keep their
// emission order so labeled series stay stable across scrapes.
type PromWriter struct {
	families []*promFamily
	byName   map[string]*promFamily
}

type promFamily struct {
	name, help, typ string
	samples         []promSample
}

type promSample struct {
	labels string // pre-rendered {k="v",...} or ""
	value  string
}

// NewPromWriter returns an empty writer.
func NewPromWriter() *PromWriter {
	return &PromWriter{byName: make(map[string]*promFamily)}
}

func (p *PromWriter) family(name, help, typ string) *promFamily {
	f := p.byName[name]
	if f == nil {
		f = &promFamily{name: name, help: help, typ: typ}
		p.byName[name] = f
		p.families = append(p.families, f)
	}
	return f
}

// promEscape escapes a label value per the exposition format.
func promEscape(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(v)
}

// renderLabels renders a label map deterministically (sorted by key).
func renderLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, k, promEscape(labels[k]))
	}
	b.WriteByte('}')
	return b.String()
}

// Counter adds a counter sample; labels may be nil.
func (p *PromWriter) Counter(name, help string, labels map[string]string, value uint64) {
	f := p.family(name, help, "counter")
	f.samples = append(f.samples, promSample{
		labels: renderLabels(labels),
		value:  strconv.FormatUint(value, 10),
	})
}

// Gauge adds a gauge sample; labels may be nil.
func (p *PromWriter) Gauge(name, help string, labels map[string]string, value float64) {
	f := p.family(name, help, "gauge")
	f.samples = append(f.samples, promSample{
		labels: renderLabels(labels),
		value:  strconv.FormatFloat(value, 'g', -1, 64),
	})
}

// GaugeInt adds a gauge sample with an integral value.
func (p *PromWriter) GaugeInt(name, help string, labels map[string]string, value int64) {
	f := p.family(name, help, "gauge")
	f.samples = append(f.samples, promSample{
		labels: renderLabels(labels),
		value:  strconv.FormatInt(value, 10),
	})
}

// WriteTo renders the exposition document.
func (p *PromWriter) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	for _, f := range p.families {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ)
		for _, s := range f.samples {
			fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, s.value)
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// ContentTypePromText is the scrape response Content-Type for format 0.0.4.
const ContentTypePromText = "text/plain; version=0.0.4; charset=utf-8"
