package metrics

import (
	"testing"
	"testing/quick"
	"time"
)

func TestCPUSampler(t *testing.T) {
	s := NewCPUSampler()
	// Burn some CPU so the sample is positive.
	x := 0.0
	deadline := time.Now().Add(30 * time.Millisecond)
	for time.Now().Before(deadline) {
		x += 1.0
		_ = x
	}
	pct := s.Sample()
	if pct <= 0 {
		t.Fatalf("CPU sample = %v, want > 0", pct)
	}
	// Upper bound: cannot exceed 100% per hardware thread by a wide margin.
	if pct > 100*1024 {
		t.Fatalf("CPU sample absurd: %v", pct)
	}
}

func TestHeapMB(t *testing.T) {
	if HeapMB() <= 0 {
		t.Fatal("HeapMB <= 0")
	}
	// Allocate and confirm the number moves upward (roughly).
	before := HeapMB()
	block := make([]byte, 32<<20)
	for i := range block {
		block[i] = byte(i)
	}
	after := HeapMB()
	if after <= before {
		t.Fatalf("heap did not grow: %v -> %v", before, after)
	}
	_ = block[0]
}

func TestSeriesSummary(t *testing.T) {
	var s Series
	if s.Min() != 0 || s.Max() != 0 || s.Mean() != 0 || s.Last() != 0 {
		t.Fatal("empty series summaries nonzero")
	}
	base := time.Unix(0, 0)
	for i, v := range []float64{3, 1, 4, 1, 5} {
		s.Add(base.Add(time.Duration(i)*time.Second), v)
	}
	if s.Min() != 1 || s.Max() != 5 || s.Last() != 5 {
		t.Fatalf("min/max/last = %v/%v/%v", s.Min(), s.Max(), s.Last())
	}
	if s.Mean() != 2.8 {
		t.Fatalf("mean = %v", s.Mean())
	}
}

func TestECDFAt(t *testing.T) {
	e := NewECDF()
	if e.At(10) != 0 || e.N() != 0 {
		t.Fatal("empty ECDF broken")
	}
	for _, x := range []float64{1, 2, 2, 3, 10} {
		e.Add(x)
	}
	cases := []struct{ x, want float64 }{
		{0, 0}, {1, 0.2}, {2, 0.6}, {3, 0.8}, {9.99, 0.8}, {10, 1}, {11, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); got != c.want {
			t.Errorf("At(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestECDFQuantile(t *testing.T) {
	e := NewECDF()
	for i := 1; i <= 100; i++ {
		e.Add(float64(i))
	}
	if q := e.Quantile(0.5); q != 50 {
		t.Fatalf("median = %v", q)
	}
	if q := e.Quantile(0.99); q != 99 {
		t.Fatalf("p99 = %v", q)
	}
	if e.Quantile(0) != 1 || e.Quantile(1) != 100 {
		t.Fatal("extreme quantiles wrong")
	}
}

func TestECDFAddN(t *testing.T) {
	e := NewECDF()
	e.AddN(5, 3)
	e.Add(7)
	if e.N() != 4 {
		t.Fatalf("N = %d", e.N())
	}
	if e.At(5) != 0.75 {
		t.Fatalf("At(5) = %v", e.At(5))
	}
}

func TestECDFSteps(t *testing.T) {
	e := NewECDF()
	for _, x := range []float64{1, 2, 2, 3} {
		e.Add(x)
	}
	steps := e.Steps()
	want := []Point2{{1, 0.25}, {2, 0.75}, {3, 1}}
	if len(steps) != len(want) {
		t.Fatalf("steps = %v", steps)
	}
	for i := range want {
		if steps[i] != want[i] {
			t.Fatalf("steps[%d] = %v, want %v", i, steps[i], want[i])
		}
	}
	if NewECDF().Steps() != nil {
		t.Fatal("empty steps non-nil")
	}
}

// Property: ECDF is monotone nondecreasing and bounded by [0,1].
func TestQuickECDFMonotone(t *testing.T) {
	f := func(xs []float64, probes []float64) bool {
		e := NewECDF()
		for _, x := range xs {
			e.Add(x)
		}
		prev := -1.0
		// Probe in sorted order of the probes themselves.
		for i := 0; i < len(probes); i++ {
			for j := i + 1; j < len(probes); j++ {
				if probes[j] < probes[i] {
					probes[i], probes[j] = probes[j], probes[i]
				}
			}
		}
		for _, p := range probes {
			v := e.At(p)
			if v < 0 || v > 1 || v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaving Add and At keeps answers consistent with a naive
// count.
func TestQuickECDFMatchesNaive(t *testing.T) {
	f := func(xs []float64, probe float64) bool {
		e := NewECDF()
		count := 0
		for _, x := range xs {
			e.Add(x)
			if x <= probe {
				count++
			}
		}
		if len(xs) == 0 {
			return e.At(probe) == 0
		}
		return e.At(probe) == float64(count)/float64(len(xs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
