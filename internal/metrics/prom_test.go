package metrics

import (
	"strings"
	"testing"
)

func TestPromWriterFormat(t *testing.T) {
	p := NewPromWriter()
	p.Counter("flowdns_flows_total", "Flow records processed.", nil, 42)
	p.Counter("flowdns_lookup_hits_total", "LookUp hits by tier.",
		map[string]string{"tier": "active"}, 10)
	p.Counter("flowdns_lookup_hits_total", "LookUp hits by tier.",
		map[string]string{"tier": "long"}, 3)
	p.Gauge("flowdns_correlation_rate", "Correlated bytes over total bytes.", nil, 0.817)
	p.GaugeInt("flowdns_store_partitions", "Partitions in the window store.", nil, 7)

	var b strings.Builder
	if _, err := p.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := `# HELP flowdns_flows_total Flow records processed.
# TYPE flowdns_flows_total counter
flowdns_flows_total 42
# HELP flowdns_lookup_hits_total LookUp hits by tier.
# TYPE flowdns_lookup_hits_total counter
flowdns_lookup_hits_total{tier="active"} 10
flowdns_lookup_hits_total{tier="long"} 3
# HELP flowdns_correlation_rate Correlated bytes over total bytes.
# TYPE flowdns_correlation_rate gauge
flowdns_correlation_rate 0.817
# HELP flowdns_store_partitions Partitions in the window store.
# TYPE flowdns_store_partitions gauge
flowdns_store_partitions 7
`
	if got != want {
		t.Fatalf("exposition diverges:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestPromEscape(t *testing.T) {
	p := NewPromWriter()
	p.Counter("m", "h", map[string]string{"k": "a\"b\\c\nd"}, 1)
	var b strings.Builder
	if _, err := p.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `m{k="a\"b\\c\nd"} 1`) {
		t.Fatalf("escaping wrong:\n%s", b.String())
	}
}

func TestPromLabelsSorted(t *testing.T) {
	p := NewPromWriter()
	p.Counter("m", "h", map[string]string{"z": "1", "a": "2"}, 1)
	var b strings.Builder
	if _, err := p.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `m{a="2",z="1"} 1`) {
		t.Fatalf("labels not sorted:\n%s", b.String())
	}
}
