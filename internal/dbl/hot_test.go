package dbl

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestHotSwapAtomicity(t *testing.T) {
	a := NewList()
	a.Add("bad.example", Spam)
	h := NewHot(a)
	if got := h.Lookup("x.bad.example"); got != Spam {
		t.Fatalf("Lookup = %v, want Spam", got)
	}
	b := NewList()
	b.Add("bad.example", Malware)
	if old := h.Swap(b); old != a {
		t.Fatal("Swap did not return the previous list")
	}
	if got := h.Lookup("x.bad.example"); got != Malware {
		t.Fatalf("post-swap Lookup = %v, want Malware", got)
	}
}

func TestHotNilIsEmpty(t *testing.T) {
	h := NewHot(nil)
	if h.Len() != 0 || h.Lookup("bad.example") != Benign {
		t.Fatal("NewHot(nil) is not an empty benign list")
	}
	h.Swap(nil)
	if h.Lookup("bad.example") != Benign {
		t.Fatal("Swap(nil) is not an empty benign list")
	}
}

// A reload swaps whole lists, so concurrent readers must always see one
// coherent classification — a domain listed in every generation never reads
// Benign mid-swap.
func TestHotSwapUnderLoad(t *testing.T) {
	mk := func(c Category) *List {
		l := NewList()
		l.Add("bad.example", c)
		return l
	}
	h := NewHot(mk(Spam))

	var stop atomic.Bool
	var wg sync.WaitGroup
	const readers = 8
	wg.Add(readers)
	errs := make(chan string, readers)
	for r := 0; r < readers; r++ {
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if c := h.Lookup("sub.bad.example"); c == Benign {
					errs <- "listed domain read Benign during swap"
					return
				}
			}
		}()
	}
	cats := []Category{Spam, Botnet, Malware, Phish, AbusedRedirector}
	for i := 0; i < 300; i++ {
		h.Swap(mk(cats[i%len(cats)]))
	}
	stop.Store(true)
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}
