package dbl

import "sync/atomic"

// Hot is a hot-swappable handle to a List, mirroring bgp.Hot: readers Load
// the current list with one atomic pointer read, and a reload builds a
// complete replacement from the blocklist file and Swaps it in. A List is
// internally safe for concurrent use, but swapping whole lists keeps a
// reload atomic — readers never observe a half-applied update where some
// domains carry the old category and some the new — and keeps the reload
// path identical to the BGP table's.
type Hot struct {
	p atomic.Pointer[List]
}

// NewHot returns a handle serving l; nil means an empty list, so a Hot is
// always safe to read.
func NewHot(l *List) *Hot {
	h := &Hot{}
	h.Swap(l)
	return h
}

// Load returns the current list. Batch consumers should Load once per batch
// so every record in the batch is classified against one consistent list.
func (h *Hot) Load() *List { return h.p.Load() }

// Swap publishes l as the current list (nil means an empty list) and
// returns the previous one. In-flight lookups on the old list finish
// against it unharmed.
func (h *Hot) Swap(l *List) *List {
	if l == nil {
		l = NewList()
	}
	return h.p.Swap(l)
}

// Lookup classifies domain against the current list.
func (h *Hot) Lookup(domain string) Category { return h.Load().Lookup(domain) }

// Len returns the size of the current list.
func (h *Hot) Len() int { return h.Load().Len() }
