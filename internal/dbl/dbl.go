// Package dbl implements a categorized domain blocklist — the stand-in for
// the Spamhaus DBL the paper queries in §5 ("Spam Domains").
//
// The paper samples ~1M domain names per day against the DBL and finds 612
// suspicious ones: 512 spam/bad-reputation, 41 botnet C&C, 34 abused
// spammed redirectors, 11 malware, 3 phishing. FlowDNS then measures the
// traffic those domains originate (Figure 5). This package provides the
// lookup side: an in-memory list with the same category taxonomy, suffix
// matching (a listed domain covers its subdomains), and a rate-limit-aware
// sampling helper mirroring the paper's once-per-hour sampling.
package dbl

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
)

// Category is a Spamhaus-DBL-style domain classification.
type Category int

// Categories used in the paper's Figure 5, plus Benign for misses.
const (
	Benign           Category = iota
	Spam                      // spam / generic bad reputation
	Botnet                    // botnet command & control
	AbusedRedirector          // abused spammed redirector
	Malware
	Phish
)

// String returns the label used in reports (matching Fig 5's facets).
func (c Category) String() string {
	switch c {
	case Spam:
		return "spam"
	case Botnet:
		return "botnet"
	case AbusedRedirector:
		return "abused-redirector"
	case Malware:
		return "malware"
	case Phish:
		return "phish"
	default:
		return "benign"
	}
}

// Categories lists the suspicious categories in the paper's reporting order.
func Categories() []Category {
	return []Category{Spam, Botnet, AbusedRedirector, Malware, Phish}
}

// CategoryFromString resolves a report label (as produced by
// Category.String) back to its category; ok is false for unknown labels.
func CategoryFromString(s string) (Category, bool) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "benign":
		return Benign, true
	case "spam":
		return Spam, true
	case "botnet":
		return Botnet, true
	case "abused-redirector":
		return AbusedRedirector, true
	case "malware":
		return Malware, true
	case "phish":
		return Phish, true
	default:
		return Benign, false
	}
}

// List is a categorized domain blocklist with suffix semantics: a listed
// "bad.example" also matches "x.bad.example". Safe for concurrent reads
// and writes.
type List struct {
	mu sync.RWMutex
	m  map[string]Category
}

// NewList returns an empty list.
func NewList() *List { return &List{m: make(map[string]Category)} }

// Add lists a domain (normalized to lowercase, no trailing dot) under a
// category.
func (l *List) Add(domain string, c Category) {
	domain = normalize(domain)
	if domain == "" {
		return
	}
	l.mu.Lock()
	l.m[domain] = c
	l.mu.Unlock()
}

// Lookup classifies a domain, walking parent suffixes so subdomains of a
// listed domain inherit its category. Unlisted names are Benign.
func (l *List) Lookup(domain string) Category {
	domain = normalize(domain)
	l.mu.RLock()
	defer l.mu.RUnlock()
	for domain != "" {
		if c, ok := l.m[domain]; ok {
			return c
		}
		i := strings.IndexByte(domain, '.')
		if i < 0 {
			break
		}
		domain = domain[i+1:]
	}
	return Benign
}

// Len returns the number of listed domains.
func (l *List) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.m)
}

func normalize(d string) string {
	d = strings.TrimSuffix(strings.ToLower(strings.TrimSpace(d)), ".")
	return d
}

// ParseList reads a blocklist in the plain text form the paper's DBL
// queries reduce to: one "domain [category]" pair per line (category
// labels as in Category.String; a bare domain defaults to spam, the
// dominant class in the paper's sample), '#' comments and blank lines
// skipped.
func ParseList(r io.Reader) (*List, error) {
	l := NewList()
	sc := bufio.NewScanner(r)
	ln := 0
	for sc.Scan() {
		ln++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		cat := Spam
		switch len(fields) {
		case 1:
		case 2:
			c, ok := CategoryFromString(fields[1])
			if !ok {
				return nil, fmt.Errorf("dbl: line %d: unknown category %q", ln, fields[1])
			}
			cat = c
		default:
			return nil, fmt.Errorf("dbl: line %d: want \"domain [category]\", got %q", ln, line)
		}
		l.Add(fields[0], cat)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dbl: %w", err)
	}
	return l, nil
}

// LoadList reads a blocklist file (see ParseList for the format).
func LoadList(path string) (*List, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dbl: %w", err)
	}
	defer f.Close()
	return ParseList(f)
}

// Sampler deduplicates domain names within a sampling window, mirroring the
// paper's "to avoid bandwidth limitations on Spamhaus DBL, we sample all
// the domain names once every hour". Checked returns true the first time a
// domain is seen in the current window.
type Sampler struct {
	mu   sync.Mutex
	seen map[string]struct{}
}

// NewSampler returns an empty sampler window.
func NewSampler() *Sampler { return &Sampler{seen: make(map[string]struct{})} }

// Checked records the domain and reports whether it still needed checking
// (i.e. first occurrence this window).
func (s *Sampler) Checked(domain string) bool {
	domain = normalize(domain)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.seen[domain]; ok {
		return false
	}
	s.seen[domain] = struct{}{}
	return true
}

// Reset opens a new sampling window (the paper's hourly boundary).
func (s *Sampler) Reset() {
	s.mu.Lock()
	s.seen = make(map[string]struct{})
	s.mu.Unlock()
}

// Size returns the number of distinct domains seen this window.
func (s *Sampler) Size() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.seen)
}
