package dbl

import "testing"

func TestLookupExactAndSuffix(t *testing.T) {
	l := NewList()
	l.Add("bad.example", Spam)
	l.Add("cc.botnet.example", Botnet)
	cases := []struct {
		domain string
		want   Category
	}{
		{"bad.example", Spam},
		{"x.bad.example", Spam},
		{"deep.x.bad.example", Spam},
		{"cc.botnet.example", Botnet},
		{"notbad.example", Benign},
		{"example", Benign},
		{"", Benign},
	}
	for _, c := range cases {
		if got := l.Lookup(c.domain); got != c.want {
			t.Errorf("Lookup(%q) = %v, want %v", c.domain, got, c.want)
		}
	}
}

func TestLookupNormalization(t *testing.T) {
	l := NewList()
	l.Add("Bad.Example.", Phish)
	if got := l.Lookup("BAD.EXAMPLE"); got != Phish {
		t.Fatalf("case-insensitive lookup = %v", got)
	}
	if got := l.Lookup("bad.example."); got != Phish {
		t.Fatalf("trailing-dot lookup = %v", got)
	}
}

func TestAddEmptyIgnored(t *testing.T) {
	l := NewList()
	l.Add("", Spam)
	l.Add(".", Spam)
	if l.Len() != 0 {
		t.Fatalf("Len = %d", l.Len())
	}
}

func TestCategoryStrings(t *testing.T) {
	want := map[Category]string{
		Benign: "benign", Spam: "spam", Botnet: "botnet",
		AbusedRedirector: "abused-redirector", Malware: "malware", Phish: "phish",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), s)
		}
	}
	if len(Categories()) != 5 {
		t.Fatalf("Categories() = %v", Categories())
	}
	for _, c := range Categories() {
		if c == Benign {
			t.Fatal("Benign in suspicious categories")
		}
	}
}

func TestSampler(t *testing.T) {
	s := NewSampler()
	if !s.Checked("a.example") {
		t.Fatal("first check must be true")
	}
	if s.Checked("a.example") {
		t.Fatal("second check must be false")
	}
	if !s.Checked("b.example") {
		t.Fatal("different domain must be true")
	}
	if s.Size() != 2 {
		t.Fatalf("Size = %d", s.Size())
	}
	s.Reset()
	if s.Size() != 0 || !s.Checked("a.example") {
		t.Fatal("Reset did not open a new window")
	}
}

func TestSamplerNormalizes(t *testing.T) {
	s := NewSampler()
	s.Checked("A.Example.")
	if s.Checked("a.example") {
		t.Fatal("normalization not applied in sampler")
	}
}
