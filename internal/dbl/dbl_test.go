package dbl

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestLookupExactAndSuffix(t *testing.T) {
	l := NewList()
	l.Add("bad.example", Spam)
	l.Add("cc.botnet.example", Botnet)
	cases := []struct {
		domain string
		want   Category
	}{
		{"bad.example", Spam},
		{"x.bad.example", Spam},
		{"deep.x.bad.example", Spam},
		{"cc.botnet.example", Botnet},
		{"notbad.example", Benign},
		{"example", Benign},
		{"", Benign},
	}
	for _, c := range cases {
		if got := l.Lookup(c.domain); got != c.want {
			t.Errorf("Lookup(%q) = %v, want %v", c.domain, got, c.want)
		}
	}
}

func TestLookupNormalization(t *testing.T) {
	l := NewList()
	l.Add("Bad.Example.", Phish)
	if got := l.Lookup("BAD.EXAMPLE"); got != Phish {
		t.Fatalf("case-insensitive lookup = %v", got)
	}
	if got := l.Lookup("bad.example."); got != Phish {
		t.Fatalf("trailing-dot lookup = %v", got)
	}
}

func TestAddEmptyIgnored(t *testing.T) {
	l := NewList()
	l.Add("", Spam)
	l.Add(".", Spam)
	if l.Len() != 0 {
		t.Fatalf("Len = %d", l.Len())
	}
}

func TestCategoryStrings(t *testing.T) {
	want := map[Category]string{
		Benign: "benign", Spam: "spam", Botnet: "botnet",
		AbusedRedirector: "abused-redirector", Malware: "malware", Phish: "phish",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), s)
		}
	}
	if len(Categories()) != 5 {
		t.Fatalf("Categories() = %v", Categories())
	}
	for _, c := range Categories() {
		if c == Benign {
			t.Fatal("Benign in suspicious categories")
		}
	}
}

func TestSampler(t *testing.T) {
	s := NewSampler()
	if !s.Checked("a.example") {
		t.Fatal("first check must be true")
	}
	if s.Checked("a.example") {
		t.Fatal("second check must be false")
	}
	if !s.Checked("b.example") {
		t.Fatal("different domain must be true")
	}
	if s.Size() != 2 {
		t.Fatalf("Size = %d", s.Size())
	}
	s.Reset()
	if s.Size() != 0 || !s.Checked("a.example") {
		t.Fatal("Reset did not open a new window")
	}
}

func TestSamplerNormalizes(t *testing.T) {
	s := NewSampler()
	s.Checked("A.Example.")
	if s.Checked("a.example") {
		t.Fatal("normalization not applied in sampler")
	}
}

func TestCategoryFromString(t *testing.T) {
	for _, c := range append(Categories(), Benign) {
		got, ok := CategoryFromString(c.String())
		if !ok || got != c {
			t.Errorf("CategoryFromString(%q) = %v/%v", c.String(), got, ok)
		}
	}
	if got, ok := CategoryFromString(" SPAM "); !ok || got != Spam {
		t.Errorf("case/space-insensitive parse = %v/%v", got, ok)
	}
	if _, ok := CategoryFromString("ransomware"); ok {
		t.Error("unknown label accepted")
	}
}

func TestParseList(t *testing.T) {
	l, err := ParseList(strings.NewReader(`
# paper-style sample
bad.example          spam
cnc.example          botnet
redir.example        abused-redirector
drop.example         malware
hook.example         phish
BARE.Example.
`))
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != 6 {
		t.Fatalf("Len = %d, want 6", l.Len())
	}
	for domain, want := range map[string]Category{
		"bad.example":      Spam,
		"x.cnc.example":    Botnet, // suffix semantics survive the loader
		"redir.example":    AbusedRedirector,
		"drop.example":     Malware,
		"hook.example":     Phish,
		"bare.example":     Spam, // bare domain defaults to spam
		"unlisted.example": Benign,
	} {
		if got := l.Lookup(domain); got != want {
			t.Errorf("Lookup(%s) = %v, want %v", domain, got, want)
		}
	}
	for _, bad := range []string{
		"bad.example ransomware",
		"bad.example spam extra",
	} {
		if _, err := ParseList(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseList(%q) accepted", bad)
		}
	}
}

func TestLoadList(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "dbl.txt")
	if err := os.WriteFile(path, []byte("bad.example botnet\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := LoadList(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.Lookup("bad.example"); got != Botnet {
		t.Fatalf("loaded Lookup = %v", got)
	}
	if _, err := LoadList(filepath.Join(dir, "missing.txt")); err == nil {
		t.Fatal("missing file accepted")
	}
}
