// Multi-process cluster tests: the flowdns binary is built and exec'd as
// real router and worker processes wired over loopback sockets, and the
// union of the workers' on-disk output is checked against a single-process
// oracle — the linear-scale-out claim tested at process granularity, not
// in-process shortcuts.
//
// TestClusterE2E is the CI lane: router + 2 workers, deterministic
// traffic, exact attribution equality. TestClusterChaos is the nightly
// soak (gated on FLOWDNS_CLUSTER_CHAOS): a worker is evacuated over
// /admin/handoff, killed and restarted mid-load, handed its shard back,
// and every node's queue ledger must still show zero accepted-record
// loss.
package repro

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/netip"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dnswire"
	"repro/internal/forward"
	"repro/internal/netflow"
	"repro/internal/stream"
)

// buildFlowdns compiles cmd/flowdns into the test's temp dir, with -race
// when the test binary itself runs under the detector, so the child
// processes are instrumented too.
func buildFlowdns(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "flowdns")
	args := []string{"build"}
	if raceEnabled {
		args = append(args, "-race")
	}
	args = append(args, "-o", bin, "./cmd/flowdns")
	out, err := exec.Command("go", args...).CombinedOutput()
	if err != nil {
		t.Fatalf("go %s: %v\n%s", strings.Join(args, " "), err, out)
	}
	return bin
}

// freeTCPAddr and freeUDPAddr reserve a loopback port by binding and
// releasing it; the child process re-binds it moments later.
func freeTCPAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	return ln.Addr().String()
}

func freeUDPAddr(t *testing.T) string {
	t.Helper()
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	return pc.LocalAddr().String()
}

// syncBuf collects a child's combined output without racing its writer.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// proc is one exec'd flowdns process under test control.
type proc struct {
	name string
	cmd  *exec.Cmd
	out  *syncBuf
	err  error
	done chan struct{}
}

func startProc(t *testing.T, name, bin string, args ...string) *proc {
	t.Helper()
	p := &proc{name: name, out: &syncBuf{}, done: make(chan struct{})}
	p.cmd = exec.Command(bin, args...)
	p.cmd.Stdout = p.out
	p.cmd.Stderr = p.out
	if err := p.cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", name, err)
	}
	go func() {
		p.err = p.cmd.Wait()
		close(p.done)
	}()
	t.Cleanup(func() {
		select {
		case <-p.done:
		default:
			p.cmd.Process.Kill()
			<-p.done
		}
		if t.Failed() {
			t.Logf("--- %s output ---\n%s", p.name, p.out)
		}
	})
	return p
}

// stop terminates the process the way an operator would (SIGTERM) and
// requires the graceful-drain path: a clean zero exit.
func (p *proc) stop(t *testing.T) {
	t.Helper()
	p.cmd.Process.Signal(syscall.SIGTERM)
	select {
	case <-p.done:
	case <-time.After(30 * time.Second):
		p.cmd.Process.Kill()
		t.Fatalf("%s: no exit 30s after SIGTERM\n%s", p.name, p.out)
	}
	if p.err != nil {
		t.Fatalf("%s: exit: %v\n%s", p.name, p.err, p.out)
	}
}

// exited reports whether the process has already terminated.
func (p *proc) exited() bool {
	select {
	case <-p.done:
		return true
	default:
		return false
	}
}

// waitHTTP polls url until it answers 200, failing early if the process
// dies first (its output explains why far better than a timeout would).
func waitHTTP(t *testing.T, p *proc, url string) {
	t.Helper()
	client := &http.Client{Timeout: time.Second}
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if p.exited() {
			t.Fatalf("%s exited while waiting for %s: %v\n%s", p.name, url, p.err, p.out)
		}
		resp, err := client.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("%s: %s never answered\n%s", p.name, url, p.out)
}

// scrapeMetrics fetches a /metrics endpoint into name{labels} -> value.
func scrapeMetrics(t *testing.T, addr string) map[string]float64 {
	t.Helper()
	client := &http.Client{Timeout: 2 * time.Second}
	resp, err := client.Get("http://" + addr + "/metrics")
	if err != nil {
		return nil // transient: caller is a polling loop
	}
	defer resp.Body.Close()
	out := map[string]float64{}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	for _, line := range strings.Split(buf.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key, val, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			continue
		}
		out[key] = f
	}
	return out
}

// metricSum adds every sample of a metric across label sets.
func metricSum(m map[string]float64, name string) uint64 {
	var sum float64
	for k, v := range m {
		if k == name || strings.HasPrefix(k, name+"{") {
			sum += v
		}
	}
	return uint64(sum)
}

// waitCond polls cond until true or the deadline, then fails with what.
func waitCond(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("%s: condition never met", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// healthLoss is the /query/health loss block the invariant check reads.
type healthLoss struct {
	Loss *struct {
		Fill, Look, Write struct {
			Offered uint64 `json:"offered"`
			Dropped uint64 `json:"dropped"`
			Sampled uint64 `json:"sampled"`
		}
	} `json:"loss"`
	Cluster *struct {
		Role string `json:"role"`
		Node string `json:"node"`
	} `json:"cluster"`
}

// requireZeroLoss asserts the per-node ledger invariant on a live worker:
// Offered == Enqueued + Dropped + Sampled holds by construction, so with
// Dropped and Sampled pinned to zero every record the node accepted is
// still in flight toward the sink — zero accepted-record loss.
func requireZeroLoss(t *testing.T, name, queryAddr string) {
	t.Helper()
	resp, err := http.Get("http://" + queryAddr + "/query/health")
	if err != nil {
		t.Fatalf("%s health: %v", name, err)
	}
	defer resp.Body.Close()
	var h healthLoss
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("%s health decode: %v", name, err)
	}
	if h.Loss == nil {
		t.Fatalf("%s health has no loss block", name)
	}
	for qname, q := range map[string]struct {
		Offered, Dropped, Sampled uint64
	}{
		"fill":  {h.Loss.Fill.Offered, h.Loss.Fill.Dropped, h.Loss.Fill.Sampled},
		"look":  {h.Loss.Look.Offered, h.Loss.Look.Dropped, h.Loss.Look.Sampled},
		"write": {h.Loss.Write.Offered, h.Loss.Write.Dropped, h.Loss.Write.Sampled},
	} {
		if q.Dropped != 0 || q.Sampled != 0 {
			t.Fatalf("%s %s queue lost accepted records: dropped=%d sampled=%d of %d offered",
				name, qname, q.Dropped, q.Sampled, q.Offered)
		}
	}
	if h.Cluster == nil || h.Cluster.Role != "worker" {
		t.Fatalf("%s health cluster block = %+v, want worker role", name, h.Cluster)
	}
}

// tsvRow is one parsed output row (the columns the assertions need).
type tsvRow struct {
	bytes uint64
	name  string
}

func readTSV(t *testing.T, path string) []tsvRow {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	var rows []tsvRow
	for _, line := range strings.Split(string(data), "\n") {
		if line == "" {
			continue
		}
		f := strings.Split(line, "\t")
		if len(f) != 8 {
			t.Fatalf("%s: malformed row %q", path, line)
		}
		b, err := strconv.ParseUint(f[3], 10, 64)
		if err != nil {
			t.Fatalf("%s: bytes column %q: %v", path, f[3], err)
		}
		rows = append(rows, tsvRow{bytes: b, name: f[5]})
	}
	return rows
}

// clusterWorker bundles one worker process's addresses and output path.
type clusterWorker struct {
	name      string
	dnsAddr   string
	flowAddr  string
	queryAddr string
	outPath   string
	proc      *proc
}

func startClusterWorker(t *testing.T, bin string, w *clusterWorker) {
	t.Helper()
	w.proc = startProc(t, w.name, bin,
		"-role", "worker", "-node", w.name,
		"-dns-listen", w.dnsAddr, "-netflow-listen", w.flowAddr,
		"-query-addr", w.queryAddr,
		"-sink", "tsv", "-out", w.outPath,
		"-flush-interval", "50ms",
	)
	waitHTTP(t, w.proc, "http://"+w.queryAddr+"/query/health")
}

// clusterSvc is one announced service in the deterministic universe.
type clusterSvc struct {
	name, edge string
	addr       netip.Addr
}

func makeClusterSvcs(n int) []clusterSvc {
	svcs := make([]clusterSvc, n)
	for i := range svcs {
		svcs[i] = clusterSvc{
			name: fmt.Sprintf("svc%03d.example", i),
			edge: fmt.Sprintf("edge%03d.cdn.example", i),
			addr: netip.AddrFrom4([4]byte{198, 51, 100, byte(i + 1)}),
		}
	}
	return svcs
}

// sendClusterDNS announces every service through the router's DNS stream
// listener: a CNAME chain (name -> edge -> address) per service, so a
// worker can only attribute flows for chains it holds completely.
func sendClusterDNS(t *testing.T, routerDNSAddr string, svcs []clusterSvc) {
	t.Helper()
	conn, err := net.Dial("tcp", routerDNSAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	sink := stream.NewDNSTCPSink(conn)
	for i, s := range svcs {
		err := sink.Send(&dnswire.Message{
			Header:    dnswire.Header{ID: uint16(i), Response: true},
			Questions: []dnswire.Question{{Name: s.name, Type: dnswire.TypeA, Class: dnswire.ClassIN}},
			Answers: []dnswire.Record{
				{Name: s.name, Type: dnswire.TypeCNAME, Class: dnswire.ClassIN, TTL: 300, Target: s.edge},
				{Name: s.edge, Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: 300, Addr: s.addr},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestClusterE2E execs the real binary as one router and two workers over
// loopback sockets, drives deterministic DNS + flow traffic through the
// router, and requires the summed per-name attribution across the worker
// processes to equal a single-process oracle exactly — plus the per-node
// zero-loss ledgers on every hop.
func TestClusterE2E(t *testing.T) {
	bin := buildFlowdns(t)
	dir := t.TempDir()

	w1 := &clusterWorker{name: "w1", dnsAddr: freeTCPAddr(t), flowAddr: freeUDPAddr(t),
		queryAddr: freeTCPAddr(t), outPath: filepath.Join(dir, "w1.tsv")}
	w2 := &clusterWorker{name: "w2", dnsAddr: freeTCPAddr(t), flowAddr: freeUDPAddr(t),
		queryAddr: freeTCPAddr(t), outPath: filepath.Join(dir, "w2.tsv")}
	startClusterWorker(t, bin, w1)
	startClusterWorker(t, bin, w2)

	routerDNS, routerFlow, routerQuery := freeTCPAddr(t), freeUDPAddr(t), freeTCPAddr(t)
	router := startProc(t, "router", bin,
		"-role", "router", "-node", "router",
		"-forward-to", fmt.Sprintf("w1=%s/%s,w2=%s/%s", w1.flowAddr, w1.dnsAddr, w2.flowAddr, w2.dnsAddr),
		"-dns-listen", routerDNS, "-netflow-listen", routerFlow,
		"-query-addr", routerQuery,
	)
	waitHTTP(t, router, "http://"+routerQuery+"/ring")

	const services = 48
	svcs := makeClusterSvcs(services)
	sendClusterDNS(t, routerDNS, svcs)

	// Each CNAME is broadcast to both workers, each A lands on one owner.
	wantDNS := uint64(2*services + services)
	waitCond(t, "DNS fanout", 15*time.Second, func() bool {
		return metricSum(scrapeMetrics(t, w1.queryAddr), "flowdns_dns_records_total")+
			metricSum(scrapeMetrics(t, w2.queryAddr), "flowdns_dns_records_total") == wantDNS
	})

	// Flows with unique byte counts, so each output row identifies its flow.
	const flowsPerSvc = 4
	base := time.Now()
	var flows []netflow.FlowRecord
	for i, s := range svcs {
		for j := 0; j < flowsPerSvc; j++ {
			flows = append(flows, netflow.FlowRecord{
				Timestamp: base, SrcIP: s.addr,
				DstIP:   netip.AddrFrom4([4]byte{10, 0, 0, byte(i + 1)}),
				SrcPort: 443, DstPort: uint16(50000 + j), Proto: netflow.ProtoTCP,
				Packets: 10, Bytes: uint64(100000 + i*flowsPerSvc + j),
			})
		}
	}
	udp, err := net.Dial("udp", routerFlow)
	if err != nil {
		t.Fatal(err)
	}
	defer udp.Close()
	nfSink := stream.NewFlowUDPSink(udp, 9, 16)
	for _, fr := range flows {
		if err := nfSink.Send(fr); err != nil {
			t.Fatal(err)
		}
	}
	if err := nfSink.Flush(); err != nil {
		t.Fatal(err)
	}

	waitCond(t, "flow fanout", 15*time.Second, func() bool {
		var fsum, wsum uint64
		for _, w := range []*clusterWorker{w1, w2} {
			m := scrapeMetrics(t, w.queryAddr)
			fsum += metricSum(m, "flowdns_flows_total")
			wsum += metricSum(m, "flowdns_written_total")
		}
		return fsum == uint64(len(flows)) && wsum == uint64(len(flows))
	})

	// Per-node ledgers while everything is still live: zero accepted-record
	// loss on the workers, zero drops/spill on the router's fanout ring.
	requireZeroLoss(t, "w1", w1.queryAddr)
	requireZeroLoss(t, "w2", w2.queryAddr)
	rm := scrapeMetrics(t, routerQuery)
	if got := metricSum(rm, "flowdns_forward_flows_total"); got != uint64(len(flows)) {
		t.Fatalf("router routed %d flows, sent %d", got, len(flows))
	}
	if got := metricSum(rm, "flowdns_forward_dns_dropped_total"); got != 0 {
		t.Fatalf("router dropped %d DNS records on a healthy cluster", got)
	}
	if got := metricSum(rm, "flowdns_retry_dropped_total"); got != 0 {
		t.Fatalf("router retry-dropped %d flow records on a healthy cluster", got)
	}

	// Graceful shutdown: router first (flushes its per-node sinks), then the
	// workers (drain their queues through the TSV sinks).
	router.stop(t)
	w1.proc.stop(t)
	w2.proc.stop(t)

	// Oracle: one correlator, same records, synchronous replay.
	oracle := core.New(core.DefaultConfig())
	now := time.Now()
	for _, s := range svcs {
		oracle.IngestDNS(stream.DNSRecord{Timestamp: now, Query: s.name, RType: dnswire.TypeCNAME, TTL: 300, Answer: s.edge})
		oracle.IngestDNS(stream.DNSRecord{Timestamp: now, Query: s.edge, RType: dnswire.TypeA, TTL: 300, Addr: s.addr})
	}
	oracleSink := core.NewCountingSink()
	for _, fr := range flows {
		oracleSink.Add(oracle.CorrelateFlow(fr))
	}
	want := oracleSink.Bytes()

	rows1, rows2 := readTSV(t, w1.outPath), readTSV(t, w2.outPath)
	if len(rows1) == 0 || len(rows2) == 0 {
		t.Fatalf("degenerate split: w1 wrote %d rows, w2 wrote %d", len(rows1), len(rows2))
	}
	merged := map[string]uint64{}
	for _, r := range append(rows1, rows2...) {
		if r.name == "NULL" {
			t.Fatalf("unattributed flow in cluster output: %+v", r)
		}
		merged[r.name] += r.bytes
	}
	if len(rows1)+len(rows2) != len(flows) {
		t.Fatalf("cluster wrote %d rows, sent %d flows", len(rows1)+len(rows2), len(flows))
	}
	if len(merged) != len(want) {
		t.Fatalf("cluster resolved %d names, oracle %d\ncluster: %v\noracle: %v", len(merged), len(want), merged, want)
	}
	for name, b := range want {
		if merged[name] != b {
			t.Fatalf("bytes[%q] = %d across cluster, oracle %d", name, merged[name], b)
		}
	}

	// Placement agreement: the rows each worker wrote are exactly the flows
	// the ring says it owns — router and test compute the same placement.
	ring, err := forward.NewRing([]string{"w1", "w2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantPerNode := map[string]int{}
	for _, fr := range flows {
		wantPerNode[ring.OwnerName(core.IPHashAddr(fr.SrcIP))]++
	}
	if len(rows1) != wantPerNode["w1"] || len(rows2) != wantPerNode["w2"] {
		t.Fatalf("placement mismatch: w1 wrote %d (ring says %d), w2 wrote %d (ring says %d)",
			len(rows1), wantPerNode["w1"], len(rows2), wantPerNode["w2"])
	}
}

// TestClusterChaos is the nightly handoff-under-fire soak: while flow load
// keeps arriving at the router, worker w2 is evacuated over /admin/handoff,
// SIGTERMed, restarted cold, and handed its shard back — and the cluster
// must come out the other side with zero accepted-record loss on every
// node ledger, exact attribution for every flow sent while the topology
// was stable, and misattribution (NULL rows) confined to w2-owned flows
// that raced the migration window.
func TestClusterChaos(t *testing.T) {
	if os.Getenv("FLOWDNS_CLUSTER_CHAOS") == "" {
		t.Skip("set FLOWDNS_CLUSTER_CHAOS=1 to run the cluster chaos soak (nightly lane)")
	}
	bin := buildFlowdns(t)
	dir := t.TempDir()

	w1 := &clusterWorker{name: "w1", dnsAddr: freeTCPAddr(t), flowAddr: freeUDPAddr(t),
		queryAddr: freeTCPAddr(t), outPath: filepath.Join(dir, "w1.tsv")}
	w2 := &clusterWorker{name: "w2", dnsAddr: freeTCPAddr(t), flowAddr: freeUDPAddr(t),
		queryAddr: freeTCPAddr(t), outPath: filepath.Join(dir, "w2a.tsv")}
	startClusterWorker(t, bin, w1)
	startClusterWorker(t, bin, w2)

	routerDNS, routerFlow, routerQuery := freeTCPAddr(t), freeUDPAddr(t), freeTCPAddr(t)
	router := startProc(t, "router", bin,
		"-role", "router", "-node", "router",
		"-forward-to", fmt.Sprintf("w1=%s/%s,w2=%s/%s", w1.flowAddr, w1.dnsAddr, w2.flowAddr, w2.dnsAddr),
		"-dns-listen", routerDNS, "-netflow-listen", routerFlow,
		"-query-addr", routerQuery,
	)
	waitHTTP(t, router, "http://"+routerQuery+"/ring")

	const services = 32
	svcs := makeClusterSvcs(services)
	sendClusterDNS(t, routerDNS, svcs)
	wantDNS := uint64(2*services + services)
	waitCond(t, "DNS fanout", 15*time.Second, func() bool {
		return metricSum(scrapeMetrics(t, w1.queryAddr), "flowdns_dns_records_total")+
			metricSum(scrapeMetrics(t, w2.queryAddr), "flowdns_dns_records_total") == wantDNS
	})

	ring, err := forward.NewRing([]string{"w1", "w2"}, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Every flow carries a unique byte count, so each output row names the
	// flow it came from; expected[bytes] is its correct attribution.
	const bytesBase = 1 << 20
	nextFlow := 0
	expected := map[uint64]string{} // bytes -> service name
	owner := map[uint64]string{}    // bytes -> ring owner
	strict := map[uint64]bool{}     // sent while the topology was stable
	relaxed := map[uint64]bool{}    // sent inside the migration window
	udp, err := net.Dial("udp", routerFlow)
	if err != nil {
		t.Fatal(err)
	}
	defer udp.Close()
	nfSink := stream.NewFlowUDPSink(udp, 9, 16)

	// sendChunk emits one flow per service and records each flow's identity
	// in the strict or relaxed ledger.
	sendChunk := func(lenient bool) {
		t.Helper()
		for i, s := range svcs {
			b := uint64(bytesBase + nextFlow)
			nextFlow++
			expected[b] = s.name
			owner[b] = ring.OwnerName(core.IPHashAddr(s.addr))
			if lenient {
				relaxed[b] = true
			} else {
				strict[b] = true
			}
			err := nfSink.Send(netflow.FlowRecord{
				Timestamp: time.Now(), SrcIP: s.addr,
				DstIP:   netip.AddrFrom4([4]byte{10, 0, 0, byte(i + 1)}),
				SrcPort: 443, DstPort: 50000, Proto: netflow.ProtoTCP,
				Packets: 1, Bytes: b,
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		if err := nfSink.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	// liveWritten sums written rows across whichever workers are up.
	liveWritten := func(addrs ...string) uint64 {
		var sum uint64
		for _, a := range addrs {
			sum += metricSum(scrapeMetrics(t, a), "flowdns_written_total")
		}
		return sum
	}

	// Phase A: steady state, both workers up. Drain fully so the migration
	// below starts with nothing in flight.
	const steadyChunks = 4
	for i := 0; i < steadyChunks; i++ {
		sendChunk(false)
	}
	waitCond(t, "phase A drain", 20*time.Second, func() bool {
		return liveWritten(w1.queryAddr, w2.queryAddr) == uint64(nextFlow)
	})

	// handoff moves the ring range owned by `rangeNode` from the worker at
	// `from` to the worker at `to`, and requires the push to report work.
	handoff := func(from, to, rangeNode string) {
		t.Helper()
		url := fmt.Sprintf("http://%s/admin/handoff?nodes=w1,w2&node=%s&to=http://%s", from, rangeNode, to)
		resp, err := http.Post(url, "", nil)
		if err != nil {
			t.Fatalf("handoff %s -> %s: %v", from, to, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("handoff %s -> %s: %s", from, to, resp.Status)
		}
		var res struct {
			Entries int `json:"entries"`
			Dropped int `json:"dropped"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatalf("handoff %s -> %s: decode: %v", from, to, err)
		}
		if res.Entries == 0 {
			t.Fatalf("handoff %s -> %s moved nothing", from, to)
		}
		t.Logf("handoff %s -> %s: %d entries exported, %d drained", from, to, res.Entries, res.Dropped)
	}

	// Migration window, with load arriving between every step. Flows sent
	// here are "relaxed": w2-owned ones can race the evacuation (NULL rows)
	// or, between w2's death and the router's first failed write, die in a
	// kernel buffer the invariant never saw accept them.
	sendChunk(true)                           // c1: evacuation racing lookups
	handoff(w2.queryAddr, w1.queryAddr, "w2") // evacuate w2's shard to w1
	sendChunk(true)                           // c2: w2 up but drained
	// Drain before the kill so SIGTERM's graceful path is the only exit and
	// no accepted record sits in a queue the process takes down with it.
	waitCond(t, "pre-kill drain", 20*time.Second, func() bool {
		return metricSum(scrapeMetrics(t, routerQuery), "flowdns_forward_flows_total") == uint64(nextFlow) &&
			liveWritten(w1.queryAddr, w2.queryAddr) == uint64(nextFlow)
	})
	requireZeroLoss(t, "w2 (first run)", w2.queryAddr)
	w2.proc.stop(t) // the kill: worker gone mid-load
	sendChunk(true) // c3: w2's share spills in the router (or blackholes pre-ICMP)
	w2.outPath = filepath.Join(dir, "w2b.tsv")
	startClusterWorker(t, bin, w2) // cold restart on the same ports
	sendChunk(true)                // c4: w2 up, store still empty
	handoff(w1.queryAddr, w2.queryAddr, "w2")
	sendChunk(true) // c5: shard restored; replays land around it

	// Phase C: steady state again; attribution must be exact from here on.
	for i := 0; i < steadyChunks/2; i++ {
		sendChunk(false)
	}

	// Let the router replay any spill, then quiesce: totals stable across a
	// full second mean nothing is still in flight.
	var last uint64
	waitCond(t, "post-chaos quiesce", 30*time.Second, func() bool {
		cur := liveWritten(w1.queryAddr, w2.queryAddr)
		stable := cur == last && cur > 0
		last = cur
		if !stable {
			return false
		}
		time.Sleep(time.Second)
		return liveWritten(w1.queryAddr, w2.queryAddr) == cur
	})

	// Router ledger: spill and replay are fine (that is the mechanism), but
	// nothing may have been dropped against the spill bounds.
	rm := scrapeMetrics(t, routerQuery)
	if got := metricSum(rm, "flowdns_retry_dropped_total"); got != 0 {
		t.Fatalf("router dropped %d flow records against spill bounds", got)
	}
	t.Logf("router: spilled=%d replayed=%d",
		metricSum(rm, "flowdns_retry_spilled_total"), metricSum(rm, "flowdns_retry_replayed_total"))

	// The per-node invariant on every surviving incarnation, then shutdown.
	requireZeroLoss(t, "w1", w1.queryAddr)
	requireZeroLoss(t, "w2 (second run)", w2.queryAddr)
	router.stop(t)
	w1.proc.stop(t)
	w2.proc.stop(t)

	rows := readTSV(t, w1.outPath)
	rows = append(rows, readTSV(t, filepath.Join(dir, "w2a.tsv"))...)
	rows = append(rows, readTSV(t, filepath.Join(dir, "w2b.tsv"))...)

	seen := map[uint64]int{}
	nullRows := 0
	for _, r := range rows {
		name, ok := expected[r.bytes]
		if !ok {
			t.Fatalf("output row with unknown byte count %d (name %q)", r.bytes, r.name)
		}
		seen[r.bytes]++
		switch r.name {
		case name:
		case "NULL":
			// Unattributed is only legal for w2-owned flows inside the
			// migration window — everything else had a stable shard to hit.
			nullRows++
			if !relaxed[r.bytes] || owner[r.bytes] != "w2" {
				t.Fatalf("flow %d (owner %s, strict=%v) written unattributed", r.bytes, owner[r.bytes], strict[r.bytes])
			}
		default:
			t.Fatalf("flow %d attributed to %q, want %q", r.bytes, r.name, name)
		}
	}
	// No duplicates ever: spill replay must not double-deliver.
	for b, n := range seen {
		if n != 1 {
			t.Fatalf("flow %d written %d times", b, n)
		}
	}
	// Strict flows: all present. Relaxed flows: only w2-owned may be missing
	// (the pre-ICMP blackhole), and the hole must stay small.
	missing := 0
	for b := range strict {
		if seen[b] == 0 {
			t.Fatalf("strict flow %d (owner %s) lost", b, owner[b])
		}
	}
	for b := range relaxed {
		if seen[b] == 0 {
			if owner[b] != "w2" {
				t.Fatalf("relaxed flow %d lost but owned by %s, which never died", b, owner[b])
			}
			missing++
		}
	}
	if bound := 2 * forward.DefaultFlowBatch; missing > bound {
		t.Fatalf("%d w2-owned flows lost in the blackhole window, bound %d", missing, bound)
	}
	t.Logf("chaos ledger: %d flows sent, %d rows written, %d NULL (migration races), %d missing (pre-ICMP blackhole)",
		nextFlow, len(rows), nullRows, missing)
}
