// Overload-degradation end-to-end tests: an undersized pipeline flooded
// past its stage queues must lose records only through the accounted
// channels — accidental overflow (Dropped) and the adaptive sampler's
// deliberate shed (Sampled) — never silently. The queue invariant
// Offered == Enqueued + Dropped + Sampled is checked against offer counts
// kept by the test itself, not the queues' own arithmetic.
package repro

import (
	"context"
	"fmt"
	"net"
	"net/netip"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dnswire"
	"repro/internal/netflow"
	"repro/internal/queue"
	"repro/internal/rollup"
	"repro/internal/stream"
	"repro/internal/workload"
)

// undersizedConfig is a pipeline whose stage buffers are far smaller than
// the flood the tests push through them, with the adaptive sampler enabled.
func undersizedConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Lanes = 2
	cfg.FillLanes = 2
	cfg.FillQueueCap = 64 // 32 per lane
	cfg.LookQueueCap = 64
	cfg.WriteQueueCap = 1024
	cfg.SampleLowWater = 0.25
	cfg.SampleHighWater = 0.75
	cfg.SampleMaxShed = 0.5
	return cfg
}

func overloadDNS(i int) stream.DNSRecord {
	return stream.DNSRecord{
		Timestamp: time.Date(2022, 5, 25, 12, 0, 0, 0, time.UTC),
		Query:     fmt.Sprintf("svc%03d.example", i%200),
		RType:     dnswire.TypeA,
		TTL:       60,
		Answer:    fmt.Sprintf("198.51.100.%d", i%250+1),
	}
}

func overloadFlow(i int) netflow.FlowRecord {
	return netflow.FlowRecord{
		Timestamp: time.Date(2022, 5, 25, 12, 0, 0, 0, time.UTC),
		SrcIP:     netip.AddrFrom4([4]byte{198, 51, 100, byte(i%250 + 1)}),
		DstIP:     netip.AddrFrom4([4]byte{10, byte(i >> 8), byte(i), 1}),
		SrcPort:   443, DstPort: 50000, Proto: netflow.ProtoTCP,
		Packets: 1, Bytes: 100,
	}
}

// TestOverloadSampledDegradationE2E floods the undersized pipeline and
// checks that deliberate degradation replaces silent loss:
//
//   - every stage queue satisfies Offered == Enqueued + Dropped + Sampled
//     against the test's own offer counts,
//   - the sampler actually shed (Sampled > 0) and that shed is visible in
//     LossRate/SampledRate,
//   - and the rollup totals equal the accepted-record count exactly — what
//     the pipeline accepted it delivered, once.
//
// The flood happens before Run starts, so the fill level seen by each
// offer — and therefore every shed and drop decision — is a deterministic
// function of the offer sequence alone.
func TestOverloadSampledDegradationE2E(t *testing.T) {
	cfg := undersizedConfig()
	var mu sync.Mutex
	var sealed []rollup.Window
	roll := rollup.New(time.Minute, 4)
	sink := rollup.NewSink(roll, rollup.WithOnSeal(func(ws []rollup.Window) {
		mu.Lock()
		sealed = append(sealed, ws...)
		mu.Unlock()
	}))
	c := core.New(cfg, core.WithSink(sink))

	// Deterministic flood: no consumers are running, so queue fill levels
	// rise monotonically and the sampler's fixed-point credit accounting
	// makes every shed decision reproducible.
	var offeredDNS, offeredFlows, acceptedDNS, acceptedFlows uint64
	for b := 0; b < 40; b++ {
		dns := make([]stream.DNSRecord, 16)
		flows := make([]netflow.FlowRecord, 16)
		for i := range dns {
			dns[i] = overloadDNS(b*16 + i)
			flows[i] = overloadFlow(b*16 + i)
		}
		acceptedDNS += uint64(c.OfferDNSBatch(dns))
		acceptedFlows += uint64(c.OfferFlowBatch(flows))
		offeredDNS += uint64(len(dns))
		offeredFlows += uint64(len(flows))
	}

	flood := c.Stats()
	for _, q := range []struct {
		name    string
		st      queue.Stats
		offered uint64
	}{
		{"fill", flood.FillQueue, offeredDNS},
		{"look", flood.LookQueue, offeredFlows},
	} {
		if got := q.st.Enqueued + q.st.Dropped + q.st.Sampled; got != q.offered {
			t.Fatalf("%s queue unaccounted loss: enqueued %d + dropped %d + sampled %d = %d, offered %d",
				q.name, q.st.Enqueued, q.st.Dropped, q.st.Sampled, got, q.offered)
		}
		if q.st.Sampled == 0 {
			t.Fatalf("%s queue: flood past the high watermark shed nothing", q.name)
		}
		if q.st.Dropped == 0 {
			t.Fatalf("%s queue: flood past capacity dropped nothing (undersized pipeline not undersized?)", q.name)
		}
	}
	// The producer's view agrees: offered − accepted counts only accidental
	// overflow, because sampled records report as accepted.
	if offeredFlows-acceptedFlows != flood.LookQueue.Dropped {
		t.Fatalf("producer-side flow drops %d != look queue Dropped %d",
			offeredFlows-acceptedFlows, flood.LookQueue.Dropped)
	}
	if offeredDNS-acceptedDNS != flood.FillQueue.Dropped {
		t.Fatalf("producer-side dns drops %d != fill queue Dropped %d",
			offeredDNS-acceptedDNS, flood.FillQueue.Dropped)
	}

	// Drain the accepted records through the real worker machinery. With no
	// sources attached, Run waits on ctx; cancelling immediately invokes the
	// graceful drain, which is lossless for everything the queues accepted.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.Run(ctx); err != nil {
		t.Fatalf("Run = %v", err)
	}

	st := c.Stats()
	if st.FillQueue.Offered() != offeredDNS || st.LookQueue.Offered() != offeredFlows {
		t.Fatalf("offer counts moved during drain: fill %d/%d look %d/%d",
			st.FillQueue.Offered(), offeredDNS, st.LookQueue.Offered(), offeredFlows)
	}
	// Write-stage invariant: everything the look workers dequeued was
	// offered downstream, and the write queue accounts all of it.
	if st.WriteQueue.Offered() != st.LookQueue.Dequeued {
		t.Fatalf("write queue offered %d != look dequeued %d",
			st.WriteQueue.Offered(), st.LookQueue.Dequeued)
	}
	if st.FlowInvalid != 0 || st.DNSInvalid != 0 {
		t.Fatalf("flood records rejected as invalid: %+v", st)
	}
	if st.Written != st.WriteQueue.Dequeued {
		t.Fatalf("written %d != write queue dequeued %d", st.Written, st.WriteQueue.Dequeued)
	}

	// Loss visibility: the rates must reflect the shed, and match the
	// counters they summarize.
	lost := st.FillQueue.Lost() + st.LookQueue.Lost() + st.WriteQueue.Lost()
	offered := st.FillQueue.Offered() + st.LookQueue.Offered() + st.WriteQueue.Offered()
	if want := float64(lost) / float64(offered); st.LossRate() != want {
		t.Fatalf("LossRate = %v, want %v", st.LossRate(), want)
	}
	sampled := st.FillQueue.Sampled + st.LookQueue.Sampled + st.WriteQueue.Sampled
	if want := float64(sampled) / float64(offered); st.SampledRate() != want {
		t.Fatalf("SampledRate = %v, want %v", st.SampledRate(), want)
	}
	if st.SampledRate() <= 0 || st.LossRate() < st.SampledRate() {
		t.Fatalf("rates do not reflect the shed: loss %v sampled %v", st.LossRate(), st.SampledRate())
	}

	// Exactly-once delivery of the accepted records: the rollup saw every
	// written flow once, with its bytes.
	mu.Lock()
	defer mu.Unlock()
	var gotFlows, gotBytes uint64
	for _, w := range sealed {
		for _, r := range w.Rows {
			gotFlows += r.Flows
			gotBytes += r.Bytes
		}
	}
	if gotFlows != st.Written {
		t.Fatalf("rollup flows %d != written %d", gotFlows, st.Written)
	}
	if gotBytes != st.Written*100 {
		t.Fatalf("rollup bytes %d != written %d × 100", gotBytes, st.Written)
	}
	t.Logf("flood: offered %d+%d, sampled %d, dropped %d, written %d",
		offeredDNS, offeredFlows, sampled,
		st.FillQueue.Dropped+st.LookQueue.Dropped+st.WriteQueue.Dropped, st.Written)
}

// TestOverloadSoak is the nightly overloaded soak: sustained generator
// traffic over a real loopback socket into the undersized pipeline with the
// sampler enabled, under -race. It checks the accounting invariant holds
// after minutes of concurrent shed/drop/drain churn, and that the
// source-side drop counter still agrees with the queues. Runs only when
// FLOWDNS_SOAK is set to a duration; PR CI skips it.
func TestOverloadSoak(t *testing.T) {
	soak := os.Getenv("FLOWDNS_SOAK")
	if soak == "" {
		t.Skip("set FLOWDNS_SOAK=60s to run the overloaded soak")
	}
	dur, err := time.ParseDuration(soak)
	if err != nil {
		t.Fatalf("bad FLOWDNS_SOAK %q: %v", soak, err)
	}

	nfConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cfg := undersizedConfig()
	sink := core.NewCountingSink()
	src := stream.NewFlowUDPSource(nfConn)
	c := core.New(cfg, core.WithSink(sink), core.WithSources(src))
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- c.Run(ctx) }()

	udp, err := net.Dial("udp", nfConn.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	nfSink := stream.NewFlowUDPSink(udp, 7, 20)

	u := workload.NewUniverse(workload.DefaultConfig())
	g := workload.NewGenerator(u, 7)
	ts := time.Date(2022, 5, 25, 12, 0, 0, 0, time.UTC)
	stopAt := time.Now().Add(dur)
	var offeredDNS uint64
	for time.Now().Before(stopAt) {
		ts = ts.Add(50 * time.Millisecond)
		dns := g.DNSBatch(ts, 400)
		c.OfferDNSBatch(dns)
		offeredDNS += uint64(len(dns))
		for _, fr := range g.FlowBatch(ts, 800) {
			if !fr.SrcIP.Is4() || !fr.DstIP.Is4() {
				continue
			}
			if err := nfSink.Send(fr); err != nil {
				t.Fatal(err)
			}
		}
		if err := nfSink.Flush(); err != nil {
			t.Fatal(err)
		}
		// No pacing sleep: the point is to keep the pipeline overloaded.
	}
	udp.Close()
	cancel()
	if err := <-runDone; err != nil {
		t.Fatalf("Run = %v", err)
	}
	// Snapshot the source only after Run returns: until then it may still
	// be ingesting datagrams buffered in the socket.
	srcStats := src.Stats()

	st := c.Stats()
	t.Logf("overload soak: %v, source %+v, fill %+v look %+v write %+v written %d",
		dur, srcStats, st.FillQueue, st.LookQueue, st.WriteQueue, st.Written)
	if st.LookQueue.Sampled == 0 && st.FillQueue.Sampled == 0 {
		t.Fatalf("sustained overload never engaged the sampler: %+v", st)
	}
	// Source-side agreement: everything the source decoded was offered to
	// the look queues and is fully accounted there, and the source's own
	// drop counter equals the queues' accidental overflow.
	if st.LookQueue.Offered() != srcStats.Records {
		t.Fatalf("look queues account %d records, source offered %d",
			st.LookQueue.Offered(), srcStats.Records)
	}
	if srcStats.Dropped != st.LookQueue.Dropped {
		t.Fatalf("source dropped %d != look queue Dropped %d", srcStats.Dropped, st.LookQueue.Dropped)
	}
	if st.FillQueue.Offered() != offeredDNS {
		t.Fatalf("fill queues account %d records, test offered %d", st.FillQueue.Offered(), offeredDNS)
	}
	if st.WriteQueue.Offered() != st.LookQueue.Dequeued {
		t.Fatalf("write queue offered %d != look dequeued %d", st.WriteQueue.Offered(), st.LookQueue.Dequeued)
	}
	if st.Written != st.WriteQueue.Dequeued {
		t.Fatalf("written %d != write queue dequeued %d", st.Written, st.WriteQueue.Dequeued)
	}
	total := uint64(0)
	for _, n := range sink.Flows() {
		total += n
	}
	if total != st.Written {
		t.Fatalf("sink saw %d flows, pipeline wrote %d", total, st.Written)
	}
}
