//go:build !race

package repro

// raceEnabled mirrors the test binary's -race flag so the cluster tests
// build their child flowdns processes with the same instrumentation.
const raceEnabled = false
