package repro

import (
	"context"
	"encoding/binary"
	"net"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cmap"
	"repro/internal/netflow"
	"repro/internal/stream"
)

// benchFlowCounter accepts everything and counts flow records; the sink for
// ingest throughput benchmarks.
type benchFlowCounter struct {
	n atomic.Uint64
}

func (c *benchFlowCounter) OfferDNS(stream.DNSRecord) bool         { return true }
func (c *benchFlowCounter) OfferDNSBatch(r []stream.DNSRecord) int { return len(r) }
func (c *benchFlowCounter) OfferFlow(netflow.FlowRecord) bool      { c.n.Add(1); return true }
func (c *benchFlowCounter) OfferFlowBatch(frs []netflow.FlowRecord) int {
	c.n.Add(uint64(len(frs)))
	return len(frs)
}

// benchV5Datagram builds one v5 export datagram with n records. Small
// exports (a few records per datagram) put the per-datagram syscall cost in
// the numerator, which is exactly what batched reads amortize.
func benchV5Datagram(b *testing.B, n int) []byte {
	b.Helper()
	recs := make([]netflow.V5Record, n)
	for i := range recs {
		recs[i] = netflow.V5Record{
			SrcAddr: [4]byte{10, 0, 0, byte(i)},
			DstAddr: [4]byte{10, 1, 0, byte(i)},
			Packets: 1, Octets: uint32(100 + i), Proto: 6,
		}
	}
	pkt, err := netflow.EncodeV5(netflow.V5Header{UnixSecs: 1653475200}, recs)
	if err != nil {
		b.Fatal(err)
	}
	return pkt
}

// BenchmarkUDPIngest measures flow ingest over a real loopback socket, one
// iteration per record delivered to the ingest façade. Each burst is
// pre-loaded into the kernel receive buffer while the source is idle, then
// only the drain is timed: that isolates the receive path (syscalls, decode,
// offer) from the exporter's send cost, which on a small machine would
// otherwise share the CPU with the receiver and mask the difference between
// the modes. The batch mode drains in recvmmsg rings (falling back
// transparently where unsupported); single forces the one-read-per-datagram
// loop the source used before batching. The ratio between the two is the
// syscall amortization batched reads buy at line rate.
//
//	go test -bench=BenchmarkUDPIngest -benchmem .
func BenchmarkUDPIngest(b *testing.B) {
	const datagrams = 500
	// One record per datagram: the low-rate-exporter worst case, where the
	// per-datagram read syscall dominates and batching pays the most.
	const recsPerDatagram = 1
	pkt := benchV5Datagram(b, recsPerDatagram)

	run := func(b *testing.B, batchSize int) {
		pc, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		if uc, ok := pc.(*net.UDPConn); ok {
			// The kernel buffer must hold a whole burst without loss, but no
			// more: a compact queue keeps the buffered skbs cache-resident, so
			// the timed drain measures the read path rather than memory stalls.
			uc.SetReadBuffer(1 << 20)
		}
		src := stream.NewFlowUDPSource(pc)
		src.BatchSize = batchSize
		sink := &benchFlowCounter{}
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		runDone := make(chan struct{})
		go func() {
			defer close(runDone)
			src.Run(ctx, sink)
		}()
		conn, err := net.Dial("udp", pc.LocalAddr().String())
		if err != nil {
			b.Fatal(err)
		}
		defer conn.Close()

		// Yield-wait rather than sleep-wait: on a small machine a sleeping
		// poller's timer wakeups steal cycles from the drain being measured,
		// while Gosched just hands the CPU to the source until it parks.
		waitFor := func(target uint64) {
			deadline := time.Now().Add(10 * time.Second)
			for spins := 0; sink.n.Load() < target; spins++ {
				if spins%1024 == 0 && time.Now().After(deadline) {
					b.Fatalf("drain stalled: %d/%d records (kernel dropped part of the burst?)",
						sink.n.Load(), target)
				}
				runtime.Gosched()
			}
		}
		// Warm-up: the first datagram makes the source allocate its read
		// buffers (in batch mode, the recvmmsg ring) and park in the poller,
		// so none of that one-time setup lands in the timed region.
		if _, err := conn.Write(pkt); err != nil {
			b.Fatal(err)
		}
		waitFor(recsPerDatagram)

		b.ReportAllocs()
		b.ResetTimer()
		var done uint64
		for done < uint64(b.N) {
			b.StopTimer()
			start := sink.n.Load()
			for i := 0; i < datagrams; i++ {
				if _, err := conn.Write(pkt); err != nil {
					b.Fatal(err)
				}
			}
			b.StartTimer()
			waitFor(start + datagrams*recsPerDatagram)
			done += datagrams * recsPerDatagram
		}
		b.StopTimer()
		cancel()
		<-runDone
	}
	b.Run("batch", func(b *testing.B) { run(b, 0) }) // stream.DefaultIngestBatch ring
	b.Run("single", func(b *testing.B) { run(b, 1) })
}

// benchTableKeys builds n distinct 16-byte binary keys with their shard
// hashes, the key shape of the correlation store's binary space.
func benchTableKeys(n int) ([][16]byte, []uint32) {
	keys := make([][16]byte, n)
	hashes := make([]uint32, n)
	for i := range keys {
		binary.BigEndian.PutUint64(keys[i][:8], uint64(i)*0x9e3779b97f4a7c15)
		binary.BigEndian.PutUint64(keys[i][8:], uint64(i))
		hashes[i] = cmap.HashBytes(keys[i][:])
	}
	return keys, hashes
}

// BenchmarkCmapTable measures the open-addressed binary key space under the
// correlation store's access mix: steady-state overwrites, hit and miss
// lookups, and the expiry sweep that reclaims dead entries without
// tombstones. Set/get must stay allocation-free.
//
//	go test -bench=BenchmarkCmapTable -benchmem .
func BenchmarkCmapTable(b *testing.B) {
	const n = 1 << 16
	keys, hashes := benchTableKeys(n)

	b.Run("set", func(b *testing.B) {
		m := cmap.New()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			j := i & (n - 1)
			m.SetBytesHashExpire(hashes[j], keys[j][:], "v", int64(i))
		}
	})
	b.Run("get-hit", func(b *testing.B) {
		m := cmap.New()
		for j := range keys {
			m.SetBytesHashExpire(hashes[j], keys[j][:], "v", 1)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			j := i & (n - 1)
			if _, ok := m.GetBytesHash(hashes[j], keys[j][:]); !ok {
				b.Fatal("miss on present key")
			}
		}
	})
	b.Run("get-miss", func(b *testing.B) {
		m := cmap.New()
		for j := 0; j < n/2; j++ {
			m.SetBytesHashExpire(hashes[j], keys[j][:], "v", 1)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			j := n/2 + i&(n/2-1)
			if _, ok := m.GetBytesHash(hashes[j], keys[j][:]); ok {
				b.Fatal("hit on absent key")
			}
		}
	})
	b.Run("expire-sweep", func(b *testing.B) {
		// Each iteration sweeps half of a full store: the backward-shift
		// delete path under a realistic mixed live/dead population.
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			m := cmap.New()
			for j := range keys {
				m.SetBytesHashExpire(hashes[j], keys[j][:], "v", int64(j%2)+1)
			}
			b.StartTimer()
			if removed := m.RemoveIfExpired(2); removed != n/2 {
				b.Fatalf("removed %d, want %d", removed, n/2)
			}
		}
	})
}
