package repro

import (
	"net"
	"net/netip"
	"testing"

	"repro/internal/forward"
	"repro/internal/netflow"
)

// BenchmarkForwardFanout measures the router's per-batch fan-out path:
// consistent-hash placement of every record, per-node partitioning, v9
// encoding into reused buffers, and the connected-UDP write. The receiving
// sockets are never read — loopback UDP sheds on overflow without failing
// the write — so the number is the router's own cost, not a consumer's.
// The path must stay allocation-free after warmup: the fan-out stage runs
// on the ingest path, where a per-record allocation becomes GC pressure at
// line rate.
//
//	go test -bench=BenchmarkForwardFanout -benchmem .
func BenchmarkForwardFanout(b *testing.B) {
	const nodes = 4
	var ring []forward.Node
	for i := 0; i < nodes; i++ {
		pc, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer pc.Close()
		ring = append(ring, forward.Node{
			Name:     string(rune('a' + i)),
			FlowAddr: pc.LocalAddr().String(),
			// The flow path never dials DNS; any address satisfies the spec.
			DNSAddr: "127.0.0.1:1",
		})
	}
	r, err := forward.NewRouter(forward.Config{Nodes: ring})
	if err != nil {
		b.Fatal(err)
	}

	// One ingest-sized batch spread over many source addresses, so every
	// iteration exercises placement across the whole ring and the per-node
	// chunked v9 encode.
	const batch = 256
	flows := make([]netflow.FlowRecord, batch)
	for i := range flows {
		flows[i] = netflow.FlowRecord{
			SrcIP:   netip.AddrFrom4([4]byte{198, 51, byte(i >> 8), byte(i)}),
			DstIP:   netip.AddrFrom4([4]byte{10, 0, 0, 1}),
			SrcPort: 443, DstPort: uint16(50000 + i), Proto: netflow.ProtoTCP,
			Packets: 1, Bytes: uint64(1000 + i),
		}
	}

	// Warmup allocates the stage buffers, per-node encode buffers, and the
	// retry staging slices, none of which belong in the measured region.
	if got := r.OfferFlowBatch(flows); got != batch {
		b.Fatalf("warmup accepted %d of %d", got, batch)
	}

	b.ReportAllocs()
	b.SetBytes(batch * 48) // standard v4 template record size, for MB/s context
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := r.OfferFlowBatch(flows); got != batch {
			b.Fatalf("accepted %d of %d", got, batch)
		}
	}
}
