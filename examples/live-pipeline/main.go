// Live pipeline: the full deployment wiring over loopback sockets.
//
// This example reproduces the paper's topology in one process: two DNS
// streams delivered as length-prefixed DNS messages over TCP (as the ISP
// resolvers deliver cache misses to the collectors) and two NetFlow v9
// exporters over UDP, all fanned into a single FlowDNS correlator whose
// Write workers emit TSV rows.
//
//	go run ./examples/live-pipeline
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/netip"
	"os"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dnswire"
	"repro/internal/stream"
	"repro/internal/workload"
)

func parseAddr(s string) (netip.Addr, error) { return netip.ParseAddr(s) }

func main() {
	// --- collector side: sockets wrapped as v2 Sources, correlator run
	// under a cancellable context ---
	dnsLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	nfConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}

	sink := core.NewTSVSink(os.Stdout)
	sink.SkipMisses = true
	c := core.New(core.DefaultConfig(),
		core.WithSink(sink),
		core.WithSources(stream.NewDNSListener(dnsLn), stream.NewFlowUDPSource(nfConn)),
	)
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- c.Run(ctx) }()

	// --- emitter side: 2 DNS streams + 2 NetFlow exporters ---
	// Churn is disabled so both generator instances (DNS emitter and its
	// matching flow emitter) see an identical, immutable universe and the
	// flows reference exactly the announced edges.
	ucfg := workload.DefaultConfig()
	ucfg.ChurnRate = 0
	u := workload.NewUniverse(ucfg)
	base := time.Now()
	var emitters sync.WaitGroup
	for s := 0; s < 2; s++ {
		emitters.Add(1)
		go func(seed int64) {
			defer emitters.Done()
			conn, err := net.Dial("tcp", dnsLn.Addr().String())
			if err != nil {
				log.Fatal(err)
			}
			defer conn.Close()
			g := workload.NewGenerator(u, seed)
			dnsSink := stream.NewDNSTCPSink(conn)
			for i := 0; i < 400; i++ {
				msg := assemble(g.DNSQueryEvent(base.Add(time.Duration(i) * time.Second)))
				if msg == nil {
					continue
				}
				if err := dnsSink.Send(msg); err != nil {
					log.Printf("dns send: %v", err)
					return
				}
			}
		}(int64(s + 1))
	}
	emitters.Wait() // DNS leads flows, as resolution precedes traffic

	// The TCP writes above finish well before the collector has drained the
	// framed messages through the fill lanes into the store. Hold the flow
	// exporters until the fill counter goes quiet — DNSRecords advances only
	// after store insertion — so traffic starts against a warm store, as in
	// a real deployment where resolution precedes traffic by seconds. On a
	// single-CPU box the line-rate ingest path can otherwise race the whole
	// flow volume through LookUp before the fills land.
	for last, quiet := uint64(0), 0; quiet < 4; {
		time.Sleep(25 * time.Millisecond)
		if n := c.Stats().DNSRecords; n == last {
			quiet++
		} else {
			last, quiet = n, 0
		}
	}

	for s := 0; s < 2; s++ {
		emitters.Add(1)
		go func(seed int64) {
			defer emitters.Done()
			conn, err := net.Dial("udp", nfConn.LocalAddr().String())
			if err != nil {
				log.Fatal(err)
			}
			defer conn.Close()
			g := workload.NewGenerator(u, seed) // same seeds: flows follow the announced edges
			nfSink := stream.NewFlowUDPSink(conn, uint32(seed), 20)
			warm := base.Add(400 * time.Second)
			// Re-announce into this generator's ring so its flows reference
			// edges the DNS streams also announced.
			for i := 0; i < 400; i++ {
				g.DNSQueryEvent(base.Add(time.Duration(i) * time.Second))
			}
			for i := 0; i < 4000; i++ {
				for _, fr := range g.FlowBatch(warm.Add(time.Duration(i)*time.Millisecond), 1) {
					if !fr.SrcIP.Is4() || !fr.DstIP.Is4() {
						continue
					}
					if err := nfSink.Send(fr); err != nil {
						log.Printf("netflow send: %v", err)
						return
					}
				}
			}
			nfSink.Flush()
		}(int64(s + 1))
	}
	emitters.Wait()

	// Let the UDP datagrams drain, then cancel the run context: the
	// pipeline closes its sources, drains every stage through the sink,
	// and Run returns.
	time.Sleep(300 * time.Millisecond)
	cancel()
	if err := <-runDone; err != nil {
		log.Fatalf("pipeline: %v", err)
	}

	st := c.Stats()
	fmt.Fprintf(os.Stderr, "\npipeline: dns records=%d flows=%d correlated=%.1f%% loss=%.4f%% writeDelay=%v\n",
		st.DNSRecords, st.Flows, 100*st.CorrelationRate(), 100*st.LossRate(),
		time.Duration(st.MaxWriteDelayNs).Round(time.Millisecond))
}

// assemble rebuilds a response message from flattened records.
func assemble(recs []stream.DNSRecord) *dnswire.Message {
	if len(recs) == 0 {
		return nil
	}
	m := &dnswire.Message{Header: dnswire.Header{Response: true}}
	m.Questions = []dnswire.Question{{Name: recs[0].Query, Type: dnswire.TypeA, Class: dnswire.ClassIN}}
	for _, rec := range recs {
		r := dnswire.Record{Name: rec.Query, Type: rec.RType, Class: dnswire.ClassIN, TTL: rec.TTL}
		if rec.RType == dnswire.TypeCNAME {
			r.Target = rec.Answer
		} else {
			r.Addr = rec.Addr
			if !r.Addr.IsValid() {
				addr, err := parseAddr(rec.Answer)
				if err != nil {
					continue
				}
				r.Addr = addr
			}
		}
		m.Answers = append(m.Answers, r)
	}
	if len(m.Answers) == 0 {
		return nil
	}
	return m
}
