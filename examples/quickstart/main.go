// Quickstart: the minimal FlowDNS loop.
//
// Build a correlator, feed it DNS records (what the ISP resolvers forward)
// and flow records (what the routers export), and read back which service
// each flow belongs to — including walking a CDN's CNAME chain back to the
// original service name.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"net/netip"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/dnswire"
	"repro/internal/netflow"
	"repro/internal/stream"
)

func main() {
	now := time.Now()

	// A correlator with the paper's defaults (10 splits, 1h/2h clear-up,
	// chain limit 6) writing TSV rows to stdout.
	sink := core.NewTSVSink(os.Stdout)
	c := core.New(core.DefaultConfig(), core.WithSink(sink))

	// The DNS stream saw a client resolve a CDN-hosted video service:
	//   video.example.com CNAME edge7.cdn-west.net
	//   edge7.cdn-west.net A 198.51.100.7
	c.IngestDNS(stream.DNSRecord{
		Timestamp: now, Query: "video.example.com",
		RType: dnswire.TypeCNAME, TTL: 300, Answer: "edge7.cdn-west.net",
	})
	c.IngestDNS(stream.DNSRecord{
		Timestamp: now, Query: "edge7.cdn-west.net",
		RType: dnswire.TypeA, TTL: 60, Answer: "198.51.100.7",
	})

	// The NetFlow stream then saw 40 MB flow from that edge IP to a
	// subscriber. Whose traffic is it?
	cf := c.CorrelateFlow(netflow.FlowRecord{
		Timestamp: now.Add(2 * time.Second),
		SrcIP:     netip.MustParseAddr("198.51.100.7"),
		DstIP:     netip.MustParseAddr("10.20.30.40"),
		SrcPort:   443, DstPort: 51234, Proto: netflow.ProtoTCP,
		Packets: 28000, Bytes: 40 << 20,
	})
	sink.WriteBatch(context.Background(), []core.CorrelatedFlow{cf})
	sink.Flush()

	fmt.Printf("\nresolved service: %s (tier=%s, CNAME hops=%d)\n",
		cf.Name, cf.Tier, cf.ChainLen)

	st := c.Stats()
	fmt.Printf("correlation rate: %.0f%% of %d bytes\n",
		100*st.CorrelationRate(), st.FlowBytes)
}
