// Malicious-traffic accounting: the paper's §5 spam/invalid-domain use
// cases (Figure 5), computed by the online rollup subsystem.
//
// A day of correlated traffic flows through the rollup sink with a
// Spamhaus-DBL-style blocklist attached, so every flow is classified
// (spam, botnet C&C, abused redirector, malware, phish) as it passes the
// Write stage. The sealed windows are merged into a day view and the
// per-category traffic shares read straight off the rollup rows; RFC 1035
// malformation accounting reuses the same rows — the measurement the paper
// notes nobody had done before FlowDNS.
//
//	go run ./examples/malicious-traffic
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/dbl"
	"repro/internal/dnsname"
	"repro/internal/rollup"
	"repro/internal/workload"
)

func main() {
	u := workload.NewUniverse(workload.DefaultConfig())
	g := workload.NewGenerator(u, 7)
	c := core.New(core.DefaultConfig())

	// Hourly windows keyed by (service, DBL category): the universe's own
	// blocklist plays the role of the live DBL feed.
	engine := rollup.New(time.Hour, 4)
	sink := rollup.NewSink(engine, rollup.WithBlocklist(u.Blocklist))
	ctx := context.Background()

	// One simulated day; hourly guaranteed sessions keep the rare
	// categories visible at example scale (at ISP scale the Zipf tail
	// covers them naturally).
	start := time.Date(2022, 5, 25, 0, 0, 0, 0, time.UTC)
	nBad := u.Config().SuspiciousServices + u.Config().MalformedServices
	var out []core.CorrelatedFlow
	for h := 0; h < 24; h++ {
		ts := start.Add(time.Duration(h) * time.Hour)
		mult := workload.DiurnalMultiplier(float64(h))
		for _, rec := range g.DNSBatch(ts, int(600*mult)) {
			c.IngestDNS(rec)
		}
		out = c.CorrelateBatch(out[:0], g.FlowBatch(ts, int(6000*mult)))
		if err := sink.WriteBatch(ctx, out); err != nil {
			log.Fatal(err)
		}
		for k := 0; k < 8; k++ {
			recs, fl := g.SessionFor((h*8+k)%nBad, ts.Add(30*time.Minute), 1)
			for _, rec := range recs {
				c.IngestDNS(rec)
			}
			out = c.CorrelateBatch(out[:0], fl)
			if err := sink.WriteBatch(ctx, out); err != nil {
				log.Fatal(err)
			}
		}
	}

	// Merge the sealed hourly windows into the day view; every report
	// below reads off its rows instead of re-scanning per-flow output.
	windows := engine.SealAll()
	if len(windows) == 0 {
		log.Fatal("no rollup windows sealed")
	}
	day := rollup.MergeAll(windows)

	// The paper samples domains hourly to respect DBL rate limits; rollup
	// rows are already unique per service, so the sampler dedups for free.
	sampler := dbl.NewSampler()
	catBytes := map[dbl.Category]uint64{}
	catDomains := map[dbl.Category]int{}
	report := dnsname.NewReport()
	violBytes := map[dnsname.Violation]uint64{}
	var total uint64
	for _, r := range day.Rows {
		if r.Service == "" {
			continue // uncorrelated traffic carries no domain to classify
		}
		total += r.Bytes
		if r.Category != dbl.Benign {
			catBytes[r.Category] += r.Bytes
			catDomains[r.Category]++
		}
		if sampler.Checked(r.Service) {
			report.Add(r.Service)
		}
		if v := dnsname.Check(r.Service); v != dnsname.OK {
			violBytes[v] += r.Bytes
		}
	}

	fmt.Printf("rollup: %d hourly windows merged, %d attribution keys\n\n",
		len(windows), len(day.Rows))
	fmt.Printf("unique correlated domains: %d (of which invalid: %.2f%%)\n",
		report.Total, 100*report.InvalidShare())
	fmt.Printf("underscore appears in %.0f%% of malformed names (paper: 87%%)\n\n",
		100*report.UnderscoreShare())

	fmt.Println("suspicious-domain traffic by DBL category:")
	for _, cat := range dbl.Categories() {
		fmt.Printf("  %-18s %3d domains  %12d bytes  %6.3f%% of traffic\n",
			cat, catDomains[cat], catBytes[cat], 100*float64(catBytes[cat])/float64(total))
	}

	fmt.Println("\nmalformed-domain traffic by violation:")
	type vrow struct {
		v dnsname.Violation
		b uint64
	}
	var rows []vrow
	for v, b := range violBytes {
		rows = append(rows, vrow{v, b})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].b > rows[j].b })
	for _, r := range rows {
		fmt.Printf("  %-18s %12d bytes  %6.3f%% of traffic\n",
			r.v, r.b, 100*float64(r.b)/float64(total))
	}
}
