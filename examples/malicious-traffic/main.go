// Malicious-traffic accounting: the paper's §5 spam/invalid-domain use
// cases (Figure 5).
//
// A day of correlated traffic is checked against a Spamhaus-DBL-style
// blocklist and against RFC 1035 name syntax; the example prints how much
// traffic each suspicious category and each malformation carries — the
// measurement the paper notes nobody had done before FlowDNS.
//
//	go run ./examples/malicious-traffic
package main

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/dbl"
	"repro/internal/dnsname"
	"repro/internal/workload"
)

func main() {
	u := workload.NewUniverse(workload.DefaultConfig())
	g := workload.NewGenerator(u, 7)
	sink := core.NewCountingSink()
	c := core.New(core.DefaultConfig())

	// One simulated day; hourly guaranteed sessions keep the rare
	// categories visible at example scale (at ISP scale the Zipf tail
	// covers them naturally).
	start := time.Date(2022, 5, 25, 0, 0, 0, 0, time.UTC)
	nBad := u.Config().SuspiciousServices + u.Config().MalformedServices
	for h := 0; h < 24; h++ {
		ts := start.Add(time.Duration(h) * time.Hour)
		mult := workload.DiurnalMultiplier(float64(h))
		for _, rec := range g.DNSBatch(ts, int(600*mult)) {
			c.IngestDNS(rec)
		}
		for _, fr := range g.FlowBatch(ts, int(6000*mult)) {
			sink.Add(c.CorrelateFlow(fr))
		}
		for k := 0; k < 8; k++ {
			recs, fl := g.SessionFor((h*8+k)%nBad, ts.Add(30*time.Minute), 1)
			for _, rec := range recs {
				c.IngestDNS(rec)
			}
			for _, fr := range fl {
				sink.Add(c.CorrelateFlow(fr))
			}
		}
	}

	// The paper samples domains hourly to respect DBL rate limits.
	sampler := dbl.NewSampler()
	catBytes := map[dbl.Category]uint64{}
	catDomains := map[dbl.Category]int{}
	report := dnsname.NewReport()
	violBytes := map[dnsname.Violation]uint64{}
	var total uint64
	for domain, b := range sink.Bytes() {
		if domain == "" {
			continue
		}
		total += b
		if cat := u.Blocklist.Lookup(domain); cat != dbl.Benign {
			catBytes[cat] += b
			catDomains[cat]++
		}
		if sampler.Checked(domain) {
			report.Add(domain)
		}
		if v := dnsname.Check(domain); v != dnsname.OK {
			violBytes[v] += b
		}
	}

	fmt.Printf("unique correlated domains: %d (of which invalid: %.2f%%)\n",
		report.Total, 100*report.InvalidShare())
	fmt.Printf("underscore appears in %.0f%% of malformed names (paper: 87%%)\n\n",
		100*report.UnderscoreShare())

	fmt.Println("suspicious-domain traffic by DBL category:")
	for _, cat := range dbl.Categories() {
		fmt.Printf("  %-18s %3d domains  %12d bytes  %6.3f%% of traffic\n",
			cat, catDomains[cat], catBytes[cat], 100*float64(catBytes[cat])/float64(total))
	}

	fmt.Println("\nmalformed-domain traffic by violation:")
	type vrow struct {
		v dnsname.Violation
		b uint64
	}
	var rows []vrow
	for v, b := range violBytes {
		rows = append(rows, vrow{v, b})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].b > rows[j].b })
	for _, r := range rows {
		fmt.Printf("  %-18s %12d bytes  %6.3f%% of traffic\n",
			r.v, r.b, 100*float64(r.b)/float64(total))
	}
}
