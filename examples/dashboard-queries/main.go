// Dashboard queries: the query/serving plane over sealed rollups.
//
// A day of synthetic ISP traffic is correlated through the attributed
// rollup sink; every hourly seal persists into the time-partitioned
// on-disk window store (internal/winstore). The query plane
// (internal/queryapi) then serves dashboard-style time-range aggregations
// over real HTTP — the requests a Grafana-like panel would issue:
//
//	/query/services?step=6h&top=3    traffic per service, 6-hour buckets
//	/query/asns?from=...&to=...      origin-AS mix for one busy evening hour
//	/query/categories                day totals per blocklist category
//	/query/health                    coverage bounds, store + cache stats
//
// Everything the server answers comes from the segment files on disk —
// restart the process over the same directory and the answers are
// identical (the root TestQueryPlaneEndToEnd proves exactly that).
//
//	go run ./examples/dashboard-queries
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/queryapi"
	"repro/internal/rollup"
	"repro/internal/winstore"
	"repro/internal/workload"
)

func main() {
	u := workload.NewUniverse(workload.DefaultConfig())
	g := workload.NewGenerator(u, 42)
	table, err := u.BGPTable()
	if err != nil {
		log.Fatal(err)
	}
	table.Freeze()

	// The store: one segment file per 6-hour partition, so the simulated
	// day lands in four partitions.
	dir, err := os.MkdirTemp("", "flowdns-winstore-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	store, err := winstore.Open(winstore.Config{Dir: dir, PartDur: 6 * time.Hour})
	if err != nil {
		log.Fatal(err)
	}

	// Hourly attributed windows; every seal is persisted as it happens —
	// the same OnSeal wiring the daemon uses.
	engine := rollup.New(time.Hour, 4)
	sink := rollup.NewSink(engine,
		rollup.WithTable(table),
		rollup.WithBlocklist(u.Blocklist),
		rollup.WithOnSeal(func(ws []rollup.Window) {
			if err := store.Add(ws); err != nil {
				log.Fatal(err)
			}
		}))

	// Correlate one simulated day, sealing each hour once it is over.
	ctx := context.Background()
	c := core.New(core.DefaultConfig())
	start := time.Date(2022, 5, 25, 0, 0, 0, 0, time.UTC)
	var out []core.CorrelatedFlow
	for h := 0; h < 24; h++ {
		ts := start.Add(time.Duration(h) * time.Hour)
		mult := workload.DiurnalMultiplier(float64(h))
		for _, rec := range g.DNSBatch(ts, int(800*mult)) {
			c.IngestDNS(rec)
		}
		out = c.CorrelateBatch(out[:0], g.FlowBatch(ts, int(8000*mult)))
		if err := sink.WriteBatch(ctx, out); err != nil {
			log.Fatal(err)
		}
		// The daemon's sink rotation does this on the wall clock (through the
		// same OnSeal hook); simulated time seals and persists explicitly.
		if err := store.Add(engine.SealBefore(ts)); err != nil {
			log.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil { // drain: seal and persist the rest
		log.Fatal(err)
	}
	st := store.Stats()
	fmt.Printf("store: %d partitions, %d windows, %d rows, %d bytes on disk at %s\n\n",
		st.Partitions, st.Windows, st.Rows, st.DiskBytes, dir)

	// Serve the query plane on loopback.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv, err := queryapi.New(store, queryapi.WithListener(ln))
	if err != nil {
		log.Fatal(err)
	}
	srvCtx, stop := context.WithCancel(ctx)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(srvCtx) }()
	base := "http://" + srv.Addr()

	get := func(path string) []byte {
		resp, err := http.Get(base + path)
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			log.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("GET %s = %d: %s", path, resp.StatusCode, body)
		}
		return body
	}

	type series struct {
		Key   string `json:"key"`
		Other bool   `json:"other"`
		Bytes uint64 `json:"bytes"`
		Flows uint64 `json:"flows"`
	}
	type response struct {
		Buckets []struct {
			Start  int64    `json:"start"`
			Series []series `json:"series"`
		} `json:"buckets"`
	}
	decode := func(body []byte) response {
		var r response
		if err := json.Unmarshal(body, &r); err != nil {
			log.Fatal(err)
		}
		return r
	}

	// Panel 1: top services across the day, 6-hour buckets. `top=3` folds
	// the long tail into one OTHER series per bucket.
	fmt.Println("top services, 6h buckets (/query/services?step=6h&top=3):")
	for _, b := range decode(get("/query/services?step=6h&top=3")).Buckets {
		fmt.Printf("  %s\n", time.Unix(b.Start, 0).UTC().Format("15:04"))
		for _, s := range b.Series {
			fmt.Printf("    %-28s %14d bytes %8d flows\n", s.Key, s.Bytes, s.Flows)
		}
	}

	// Panel 2: the origin-AS mix during one busy evening hour — the range
	// narrowed with from/to, as a dashboard zoom does.
	evening := start.Add(20 * time.Hour)
	path := fmt.Sprintf("/query/asns?from=%d&to=%d&top=5",
		evening.Unix(), evening.Add(time.Hour).Unix())
	fmt.Printf("\norigin ASes, %s–%s UTC (%s):\n",
		evening.Format("15:04"), evening.Add(time.Hour).Format("15:04"), path)
	for _, b := range decode(get(path)).Buckets {
		for _, s := range b.Series {
			key := s.Key
			if !s.Other {
				key = "AS" + key
			}
			fmt.Printf("    %-10s %14d bytes\n", key, s.Bytes)
		}
	}

	// Panel 3: blocklist-category day totals — the malicious-traffic view.
	fmt.Println("\ncategories, day total (/query/categories):")
	for _, b := range decode(get("/query/categories")).Buckets {
		for _, s := range b.Series {
			fmt.Printf("    %-12s %14d bytes %8d flows\n", s.Key, s.Bytes, s.Flows)
		}
	}

	// Health: coverage bounds plus store and cache counters.
	var health map[string]any
	if err := json.Unmarshal(get("/query/health"), &health); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhealth: status=%v oldest=%v newest=%v\n",
		health["status"], health["oldest"], health["newest"])

	stop()
	if err := <-done; err != nil {
		log.Fatal(err)
	}
	if err := store.Close(); err != nil {
		log.Fatal(err)
	}
}
