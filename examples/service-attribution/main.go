// Service attribution: the paper's "Network Provisioning and Planning" use
// case (§5, Figure 4).
//
// A day of synthetic ISP traffic is correlated, then joined with BGP data
// to see which origin ASes serve the top streaming services — the insight
// ISPs use "to negotiate with content providers over using ISP's resources
// instead of a third-party CDN" and to find fallback paths.
//
//	go run ./examples/service-attribution
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"repro/internal/bgp"
	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	// Build the synthetic ISP. Pin two streaming services the way the
	// paper's S1/S2 behave: S1 on a single CDN, S2 multi-CDN.
	u := workload.NewUniverse(workload.DefaultConfig())
	g := workload.NewGenerator(u, 42)
	s1, s1idx := g.RankService(1)
	s2, s2idx := g.RankService(2)
	u.PinServiceToCDNs(s1idx, []int{0}, 4)
	u.PinServiceToCDNs(s2idx, []int{1, 2}, 4)

	table, err := u.BGPTable()
	if err != nil {
		log.Fatal(err)
	}

	// Correlate one simulated day and attribute bytes per (service, AS).
	type svcAS struct {
		name string
		asn  uint32
	}
	bytesBy := map[svcAS]uint64{}
	c := core.New(core.DefaultConfig())
	start := time.Date(2022, 5, 25, 0, 0, 0, 0, time.UTC)
	for h := 0; h < 24; h++ {
		ts := start.Add(time.Duration(h) * time.Hour)
		mult := workload.DiurnalMultiplier(float64(h))
		for _, rec := range g.DNSBatch(ts, int(800*mult)) {
			c.IngestDNS(rec)
		}
		for _, fr := range g.FlowBatch(ts, int(8000*mult)) {
			cf := c.CorrelateFlow(fr)
			if !cf.Correlated() {
				continue
			}
			asn, _ := table.Lookup(fr.SrcIP)
			bytesBy[svcAS{cf.Name, asn}] += fr.Bytes
		}
	}

	report := func(label, name string) {
		type row struct {
			asn uint32
			b   uint64
		}
		var rows []row
		var total uint64
		for k, b := range bytesBy {
			if k.name == name {
				rows = append(rows, row{k.asn, b})
				total += b
			}
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].b > rows[j].b })
		fmt.Printf("%s (%s): %d bytes total\n", label, name, total)
		for _, r := range rows {
			fmt.Printf("  AS%-6d %12d bytes  %5.1f%%\n", r.asn, r.b, 100*float64(r.b)/float64(total))
		}
	}
	report("S1 single-CDN streaming service", s1.Name)
	report("S2 multi-CDN streaming service", s2.Name)

	// Fallback-path view: aggregate across all services per origin AS —
	// what an operator inspects when a peering link breaks.
	perAS := map[uint32]uint64{}
	for k, b := range bytesBy {
		perAS[k.asn] += b
	}
	var rows []bgp.Assignment2
	for asn, b := range perAS {
		rows = append(rows, bgp.Assignment2{ASN: asn, Bytes: b})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Bytes > rows[j].Bytes })
	fmt.Println("\ntop origin ASes across all correlated traffic:")
	for i, row := range rows {
		if i >= 5 {
			break
		}
		fmt.Printf("  %s\n", row)
	}
}
