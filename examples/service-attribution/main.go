// Service attribution: the paper's "Network Provisioning and Planning" use
// case (§5, Figure 4), computed by the online rollup subsystem.
//
// A day of synthetic ISP traffic is correlated and fed through the rollup
// sink with a BGP table attached, so every flow is attributed to
// (service, origin AS) as it passes the Write stage — no offline join. The
// hourly windows are then merged (rollup windows are merge-snapshots:
// associative, commutative, total-preserving) into the day view the paper
// charts: which origin ASes serve the top streaming services — the insight
// ISPs use "to negotiate with content providers over using ISP's resources
// instead of a third-party CDN" and to find fallback paths.
//
//	go run ./examples/service-attribution
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/rollup"
	"repro/internal/workload"
)

func main() {
	// Build the synthetic ISP. Pin two streaming services the way the
	// paper's S1/S2 behave: S1 on a single CDN, S2 multi-CDN.
	u := workload.NewUniverse(workload.DefaultConfig())
	g := workload.NewGenerator(u, 42)
	s1, s1idx := g.RankService(1)
	s2, s2idx := g.RankService(2)
	u.PinServiceToCDNs(s1idx, []int{0}, 4)
	u.PinServiceToCDNs(s2idx, []int{1, 2}, 4)

	table, err := u.BGPTable()
	if err != nil {
		log.Fatal(err)
	}
	table.Freeze() // build-then-read: rollup attribution only reads

	// Hourly rollup windows keyed by (service, origin AS); the sink
	// attributes each correlated flow inline.
	engine := rollup.New(time.Hour, 4)
	sink := rollup.NewSink(engine, rollup.WithTable(table))

	// Correlate one simulated day through the rollup sink.
	ctx := context.Background()
	c := core.New(core.DefaultConfig())
	start := time.Date(2022, 5, 25, 0, 0, 0, 0, time.UTC)
	var out []core.CorrelatedFlow
	for h := 0; h < 24; h++ {
		ts := start.Add(time.Duration(h) * time.Hour)
		mult := workload.DiurnalMultiplier(float64(h))
		for _, rec := range g.DNSBatch(ts, int(800*mult)) {
			c.IngestDNS(rec)
		}
		out = c.CorrelateBatch(out[:0], g.FlowBatch(ts, int(8000*mult)))
		if err := sink.WriteBatch(ctx, out); err != nil {
			log.Fatal(err)
		}
	}

	// Seal the 24 hourly windows and merge them into the day view.
	windows := engine.SealAll()
	if len(windows) == 0 {
		log.Fatal("no rollup windows sealed")
	}
	day := rollup.MergeAll(windows)
	fmt.Printf("rollup: %d hourly windows merged, %d (service, AS) keys\n\n",
		len(windows), len(day.Rows))

	report := func(label, name string) {
		var svc []rollup.Row
		var total uint64
		for _, r := range day.Rows {
			if r.Service == name {
				svc = append(svc, r)
				total += r.Bytes
			}
		}
		sort.Slice(svc, func(i, j int) bool { return svc[i].Bytes > svc[j].Bytes })
		fmt.Printf("%s (%s): %d bytes total\n", label, name, total)
		for _, r := range svc {
			fmt.Printf("  AS%-6d %12d bytes  %5.1f%%\n",
				r.ASN, r.Bytes, 100*float64(r.Bytes)/float64(total))
		}
	}
	report("S1 single-CDN streaming service", s1.Name)
	report("S2 multi-CDN streaming service", s2.Name)

	// Fallback-path view: aggregate across all correlated services per
	// origin AS — what an operator inspects when a peering link breaks.
	perAS := map[uint32]uint64{}
	for _, r := range day.Rows {
		if r.Service != "" {
			perAS[r.ASN] += r.Bytes
		}
	}
	type asRow struct {
		asn uint32
		b   uint64
	}
	var rows []asRow
	for asn, b := range perAS {
		rows = append(rows, asRow{asn, b})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].b > rows[j].b })
	fmt.Println("\ntop origin ASes across all correlated traffic:")
	for i, r := range rows {
		if i >= 5 {
			break
		}
		fmt.Printf("  AS%d:%d\n", r.asn, r.b)
	}
}
