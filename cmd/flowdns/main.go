// Command flowdns is the deployable FlowDNS correlator daemon.
//
// It listens for DNS response streams on TCP (length-prefixed DNS messages,
// RFC 1035 §4.2.2 framing — the transport the paper's ISP resolvers use to
// reach the collectors) and for NetFlow v5/v9 exports on UDP, correlates
// them in real time, and writes tab-separated correlated flows to a file or
// stdout.
//
// Example, mirroring the paper's large-ISP topology (2 DNS streams, many
// NetFlow streams, all fanned into one correlator):
//
//	flowdns -dns-listen :5353 -netflow-listen :2055 -out correlated.tsv
//
// Stats are printed once per -stats-interval: correlation rate, loss on
// every stage queue, store sizes, write delay.
package main

import (
	"encoding/json"
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/stream"
)

func main() {
	var (
		configPath    = flag.String("config", "", "JSON configuration file (overrides the flags below; see -example-config)")
		exampleConfig = flag.Bool("example-config", false, "print an example configuration file and exit")
		dnsListen     = flag.String("dns-listen", ":5353", "comma-separated TCP listen addresses for DNS streams")
		netflowListen = flag.String("netflow-listen", ":2055", "comma-separated UDP listen addresses for NetFlow/IPFIX streams")
		out           = flag.String("out", "-", "output file for correlated flows ('-' = stdout)")
		variant       = flag.String("variant", "Main", "benchmark variant: Main, NoSplit, NoClearUp, NoRotation, NoLong, ExactTTL")
		fillWorkers   = flag.Int("fillup-workers", 4, "FillUp workers")
		lookWorkers   = flag.Int("lookup-workers", 8, "LookUp workers")
		writeWorkers  = flag.Int("write-workers", 2, "Write workers")
		statsInterval = flag.Duration("stats-interval", 30*time.Second, "stats reporting interval")
		skipMisses    = flag.Bool("skip-misses", false, "do not write rows for uncorrelated flows")
	)
	flag.Parse()

	if *exampleConfig {
		data, err := json.MarshalIndent(config.Example(), "", "  ")
		if err != nil {
			log.Fatalf("flowdns: %v", err)
		}
		os.Stdout.Write(append(data, '\n'))
		return
	}

	var cfg core.Config
	if *configPath != "" {
		file, err := config.Load(*configPath)
		if err != nil {
			log.Fatalf("flowdns: %v", err)
		}
		cfg, err = file.CoreConfig()
		if err != nil {
			log.Fatalf("flowdns: %v", err)
		}
		var dnsAddrs, flowAddrs []string
		for _, s := range file.DNSStreams {
			dnsAddrs = append(dnsAddrs, s.Listen)
		}
		for _, s := range file.FlowStreams {
			flowAddrs = append(flowAddrs, s.Listen)
		}
		*dnsListen = strings.Join(dnsAddrs, ",")
		*netflowListen = strings.Join(flowAddrs, ",")
		if file.Output.Path != "" {
			*out = file.Output.Path
		}
		*skipMisses = file.Output.SkipMisses
	} else {
		cfg = core.ConfigForVariant(core.Variant(*variant))
		cfg.FillUpWorkers = *fillWorkers
		cfg.LookUpWorkers = *lookWorkers
		cfg.WriteWorkers = *writeWorkers
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatalf("flowdns: %v", err)
		}
		defer f.Close()
		w = f
	}
	sink := core.NewTSVSink(w)
	sink.SkipMisses = *skipMisses
	defer sink.Flush()

	c := core.New(cfg, sink)
	c.Start()

	var wg sync.WaitGroup
	var closers []func()

	// DNS TCP listeners: every accepted connection is one DNS stream.
	for _, addr := range splitAddrs(*dnsListen) {
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			log.Fatalf("flowdns: dns listen %s: %v", addr, err)
		}
		closers = append(closers, func() { ln.Close() })
		log.Printf("flowdns: DNS stream listener on %s", ln.Addr())
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				conn, err := ln.Accept()
				if err != nil {
					return
				}
				wg.Add(1)
				go func() {
					defer wg.Done()
					src := stream.NewDNSTCPSource(conn, c.DNSQueue())
					if err := src.Run(); err != nil {
						log.Printf("flowdns: dns stream: %v", err)
					}
				}()
			}
		}()
	}

	// NetFlow UDP listeners.
	for _, addr := range splitAddrs(*netflowListen) {
		pc, err := net.ListenPacket("udp", addr)
		if err != nil {
			log.Fatalf("flowdns: netflow listen %s: %v", addr, err)
		}
		closers = append(closers, func() { pc.Close() })
		log.Printf("flowdns: NetFlow listener on %s", pc.LocalAddr())
		wg.Add(1)
		go func() {
			defer wg.Done()
			src := stream.NewFlowUDPSource(pc, c.FlowQueue())
			if err := src.Run(); err != nil {
				log.Printf("flowdns: netflow stream: %v", err)
			}
		}()
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(*statsInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			logStats(c)
		case sig := <-stop:
			log.Printf("flowdns: %v — draining", sig)
			for _, cl := range closers {
				cl()
			}
			wg.Wait()
			c.Stop()
			sink.Flush()
			logStats(c)
			return
		}
	}
}

func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

func logStats(c *core.Correlator) {
	st := c.Stats()
	log.Printf("flowdns: dns=%d flows=%d corr=%.3f(bytes) loss=%.5f ipname=%d namecname=%d writeDelay=%v",
		st.DNSRecords, st.Flows, st.CorrelationRate(), st.LossRate(),
		st.IPNameEntries, st.NameCnameEntries, time.Duration(st.MaxWriteDelayNs).Round(time.Millisecond))
}
