// Command flowdns is the deployable FlowDNS correlator daemon.
//
// It listens for DNS response streams on TCP (length-prefixed DNS messages,
// RFC 1035 §4.2.2 framing — the transport the paper's ISP resolvers use to
// reach the collectors) and for NetFlow v5/v9/IPFIX exports on UDP,
// correlates them in real time, and writes batched correlated flows to the
// configured sink (TSV or JSONL, file or stdout).
//
// Example, mirroring the paper's large-ISP topology (2 DNS streams, many
// NetFlow streams, all fanned into one correlator):
//
//	flowdns -dns-listen :5353 -netflow-listen :2055 -out correlated.tsv
//
// SIGINT/SIGTERM cancels the run context; the pipeline stops intake,
// drains every stage through the sink, and exits. Stats are logged once
// per -stats-interval: correlation rate, loss on every stage queue, store
// sizes, write delay.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/bgp"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/dbl"
	"repro/internal/fault"
	"repro/internal/forward"
	"repro/internal/influxsink"
	"repro/internal/metrics"
	"repro/internal/queryapi"
	"repro/internal/rollup"
	"repro/internal/stream"
	"repro/internal/winstore"
)

func main() {
	var (
		configPath    = flag.String("config", "", "JSON configuration file (overrides the flags below; see -example-config)")
		exampleConfig = flag.Bool("example-config", false, "print an example configuration file and exit")
		dnsListen     = flag.String("dns-listen", ":5353", "comma-separated TCP listen addresses for DNS streams")
		netflowListen = flag.String("netflow-listen", ":2055", "comma-separated UDP listen addresses for NetFlow/IPFIX streams")
		out           = flag.String("out", "-", "output file for correlated flows ('-' = stdout)")
		sinkName      = flag.String("sink", "tsv", "output sink: "+strings.Join(core.SinkNames(), ", "))
		sinkURL       = flag.String("sink-url", "", "HTTP endpoint for -sink influx (e.g. http://influx:8086/write?db=flowdns; '' = write line protocol to -out)")
		measurement   = flag.String("measurement", "", "Influx measurement name for -sink influx ('' = flowdns)")
		variant       = flag.String("variant", "Main", "benchmark variant: Main, NoSplit, NoClearUp, NoRotation, NoLong, ExactTTL")
		lanes         = flag.Int("lanes", 0, "correlation lanes (flows partitioned by dst IP; 0 = one lane per split)")
		fillLanes     = flag.Int("fill-lanes", 0, "fill lanes (DNS records partitioned by answer IP; 0 = mirror -lanes)")
		fillWorkers   = flag.Int("fillup-workers", 4, "FillUp workers")
		lookWorkers   = flag.Int("lookup-workers", core.DefaultNumSplit, "LookUp workers (distributed across lanes, min one per lane)")
		writeWorkers  = flag.Int("write-workers", 2, "Write workers")
		batchSize     = flag.Int("batch-size", core.DefaultWriteBatchSize, "correlated flows per sink WriteBatch call")
		ingestBatch   = flag.Int("ingest-batch", 0, "UDP datagrams drained per batched socket read (recvmmsg ring size; 0 = default 32, 1 = single-read loop)")
		flushEvery    = flag.Duration("flush-interval", core.DefaultWriteFlushInterval, "max wait for a write batch to fill")
		statsInterval = flag.Duration("stats-interval", 30*time.Second, "stats reporting interval")
		skipMisses    = flag.Bool("skip-misses", false, "do not write rows for uncorrelated flows")
		snapshotPath  = flag.String("snapshot", "", "warm-restart checkpoint file: restore on boot, checkpoint periodically and on shutdown ('' = disabled)")
		snapshotEvery = flag.Duration("snapshot-every", core.DefaultSnapshotInterval, "checkpoint cadence when -snapshot is set")

		sampleMaxShed   = flag.Float64("sample-max-shed", 0, "adaptive sampler shed ceiling in (0,1]: fraction of offered records deliberately shed (and counted) at full buffers (0 = disabled)")
		sampleLowWater  = flag.Float64("sample-low-water", 0, "buffer fill below which the sampler sheds nothing (0 = default 0.5; requires -sample-max-shed)")
		sampleHighWater = flag.Float64("sample-high-water", 0, "buffer fill at which the shed rate reaches -sample-max-shed (0 = default 0.9; requires -sample-max-shed)")

		rollupOn     = flag.Bool("rollup", false, "enable online attribution rollups (service × origin-AS × DBL category)")
		window       = flag.Duration("window", rollup.DefaultWindow, "rollup window rotation interval (whole seconds)")
		rollupOut    = flag.String("rollup-out", "rollups.tsv", "sealed rollup window export file ('-' = stdout, '' = none)")
		rollupFormat = flag.String("rollup-format", "tsv", "rollup export format: tsv, json")
		rollupHTTP   = flag.String("rollup-http", "", "listen address for the /rollups live snapshot endpoint ('' = disabled)")
		bgpTablePath = flag.String("bgp-table", "", "prefix→origin-ASN file for rollup AS attribution")
		dblPath      = flag.String("dbl", "", "domain blocklist file for rollup DBL-category attribution")

		dnsIdle    = flag.Duration("dns-idle-timeout", 0, "close a DNS TCP stream that goes silent for this long (0 = keep wedged streams open)")
		retryOn    = flag.Bool("retry-sink", false, "wrap the output sink in a retry/spill wrapper: timeout-bounded attempts, doubling backoff, bounded buffering across sink outages")
		retrySpill = flag.String("retry-spill", "", "on-disk spill file for -retry-sink, replayed after recovery or restart ('' = memory-only)")
		faultSpecs = flag.String("faults", "", "arm failpoints at boot: name=spec[;name=spec...], same grammar as the FLOWDNS_FAULTS env var (chaos testing)")
		faultAdmin = flag.Bool("fault-admin", false, "mount /admin/fault on the query server: GET failpoint catalog, POST arm/disarm (chaos testing)")

		queryAddr    = flag.String("query-addr", "", "query-plane HTTP listen address serving /query/*, /metrics, /rollups ('' = disabled; requires -store-dir unless -role is set)")
		storeDir     = flag.String("store-dir", "", "window-store partition directory persisting sealed rollup windows ('' = disabled; requires -rollup)")
		retention    = flag.Duration("retention", 0, "delete stored partitions older than this (0 = keep everything)")
		compactAfter = flag.Duration("compact-after", 0, "compact a partition this long after its interval ends (0 = default 10m, negative = never)")

		role      = flag.String("role", "", "cluster role: '' standalone, 'router' (consistent-hash fan-out to -forward-to nodes, no local store), 'worker' (correlator also serving /admin/handoff)")
		forwardTo = flag.String("forward-to", "", "router fan-out ring: name=flowAddr/dnsAddr[,name=...] (requires -role router)")
		nodeName  = flag.String("node", "", "this process's ring name, for handoff placement and cluster health (requires -role)")
		vnodes    = flag.Int("vnodes", 0, "virtual nodes per ring member (0 = default 64); must match across the cluster")
	)
	flag.Parse()

	// Same contract as the config file's snapshot_every_seconds checks: a
	// cadence without a path would silently disable the checkpointing the
	// operator asked for, and a non-positive cadence would be silently
	// coerced to the default instead of failing fast. Skipped in -config
	// mode, where the file governs and these flags are unused.
	if *configPath == "" {
		if *snapshotPath == "" {
			flag.Visit(func(f *flag.Flag) {
				if f.Name == "snapshot-every" {
					log.Fatalf("flowdns: -snapshot-every set without -snapshot")
				}
			})
		} else if *snapshotEvery <= 0 {
			log.Fatalf("flowdns: non-positive -snapshot-every %v", *snapshotEvery)
		}
		// Mirror the config file's query-section validation.
		if *retention < 0 {
			log.Fatalf("flowdns: negative -retention %v", *retention)
		}
		// A cluster process serves health/metrics/admin on the query
		// address even without a local window store.
		if *queryAddr != "" && *storeDir == "" && *role == "" {
			log.Fatalf("flowdns: -query-addr set without -store-dir (nothing to serve)")
		}
		switch *role {
		case "", "router", "worker":
		default:
			log.Fatalf("flowdns: unknown -role %q (want router or worker)", *role)
		}
		if *role == "router" && *forwardTo == "" {
			log.Fatalf("flowdns: -role router requires -forward-to")
		}
		if *forwardTo != "" && *role != "router" {
			log.Fatalf("flowdns: -forward-to requires -role router")
		}
		if *nodeName != "" && *role == "" {
			log.Fatalf("flowdns: -node requires -role")
		}
		if *vnodes < 0 {
			log.Fatalf("flowdns: negative -vnodes %d", *vnodes)
		}
		if *storeDir != "" && !*rollupOn {
			log.Fatalf("flowdns: -store-dir requires -rollup (the store persists sealed rollup windows)")
		}
		// Mirror the config file's sampler and output validation.
		if *sampleMaxShed < 0 || *sampleMaxShed > 1 {
			log.Fatalf("flowdns: -sample-max-shed %v outside [0,1]", *sampleMaxShed)
		}
		if *sampleMaxShed == 0 && (*sampleLowWater != 0 || *sampleHighWater != 0) {
			log.Fatalf("flowdns: sampler watermarks set without -sample-max-shed (sampling stays disabled)")
		}
		if *sampleLowWater < 0 || *sampleLowWater > 1 || *sampleHighWater < 0 || *sampleHighWater > 1 {
			log.Fatalf("flowdns: sampler watermarks outside [0,1]")
		}
		if *ingestBatch < 0 {
			log.Fatalf("flowdns: negative -ingest-batch %d", *ingestBatch)
		}
		if *sinkURL != "" && *sinkName != "influx" {
			log.Fatalf("flowdns: -sink-url only applies to -sink influx (have %q)", *sinkName)
		}
		if *dnsIdle < 0 {
			log.Fatalf("flowdns: negative -dns-idle-timeout %v", *dnsIdle)
		}
		if *retrySpill != "" && !*retryOn {
			log.Fatalf("flowdns: -retry-spill set without -retry-sink")
		}
	}

	if *exampleConfig {
		data, err := json.MarshalIndent(config.Example(), "", "  ")
		if err != nil {
			log.Fatalf("flowdns: %v", err)
		}
		os.Stdout.Write(append(data, '\n'))
		return
	}

	var flagRetry *config.RetryConfig
	if *retryOn {
		flagRetry = &config.RetryConfig{SpillPath: *retrySpill}
	}
	cfg, outputs, rcfg, qcfg, chaos, cluster := loadConfig(*configPath, configFlags{
		variant: *variant, lanes: *lanes, fillLanes: *fillLanes, fillWorkers: *fillWorkers, lookWorkers: *lookWorkers,
		writeWorkers: *writeWorkers, batchSize: *batchSize, flushEvery: *flushEvery, ingestBatch: *ingestBatch,
		snapshotPath: *snapshotPath, snapshotEvery: *snapshotEvery,
		sampleLowWater: *sampleLowWater, sampleHighWater: *sampleHighWater, sampleMaxShed: *sampleMaxShed,
		dnsListen: dnsListen, netflowListen: netflowListen, dnsIdle: *dnsIdle,
		retry: flagRetry, faultAdmin: *faultAdmin,
		role: *role, forwardTo: *forwardTo, node: *nodeName, vnodes: *vnodes,
		out: *out, sink: *sinkName, sinkURL: *sinkURL, measurement: *measurement, skipMisses: *skipMisses,
		rollup: config.RollupConfig{
			Enabled: *rollupOn, WindowSeconds: windowSeconds(*window),
			Path: *rollupOut, Format: *rollupFormat, HTTP: *rollupHTTP,
			BGPTable: *bgpTablePath, Blocklist: *dblPath,
		},
		query: config.QueryConfig{
			Listen: *queryAddr, StoreDir: *storeDir,
			RetentionSeconds:    int(*retention / time.Second),
			CompactAfterSeconds: int(*compactAfter / time.Second),
		},
	})

	// Arm failpoints before any sink or source is constructed, so the very
	// first I/O can hit them: the environment first, then the config file's
	// map / the -faults flag (later arming of the same point wins).
	if err := fault.FromEnv(); err != nil {
		log.Fatalf("flowdns: %s: %v", fault.Env, err)
	}
	for name, spec := range chaos.faults {
		if err := fault.Enable(name, spec); err != nil {
			log.Fatalf("flowdns: config faults: %v", err)
		}
	}
	if err := fault.EnableSpecs(*faultSpecs); err != nil {
		log.Fatalf("flowdns: -faults: %v", err)
	}
	if armed := armedFaults(); len(armed) > 0 {
		log.Printf("flowdns: WARNING: %d failpoint(s) armed: %s", len(armed), strings.Join(armed, ", "))
	}

	// The router role is a different program shape: no correlator, no store,
	// no sink — just the fan-out stage plus its admin plane.
	if cluster.role == "router" {
		runRouter(cfg, cluster, splitAddrs(*dnsListen), splitAddrs(*netflowListen))
		return
	}

	sink, closeFiles, extraMetrics, err := buildSink(outputs)
	if err != nil {
		log.Fatalf("flowdns: %v", err)
	}
	defer closeFiles()

	// The drain flag and the stats feed are late-bound: the HTTP handlers
	// close over the correlator pointer assigned further down, before Run.
	var corr *core.Correlator
	draining := func() bool { return corr != nil && corr.Draining() }
	pipelineStats := func() core.Stats {
		if corr == nil {
			return core.Stats{}
		}
		return corr.Stats()
	}
	var services []core.Service

	// The window store persists sealed rollup windows; its maintenance loop
	// (compaction + retention) runs as a service under the pipeline
	// lifecycle.
	var store *winstore.Store
	if cfg.StoreDir != "" {
		store, err = winstore.Open(winstore.Config{
			Dir:          cfg.StoreDir,
			PartDur:      time.Duration(qcfg.PartSeconds) * time.Second,
			Retention:    cfg.Retention,
			CompactAfter: cfg.CompactAfter,
		})
		if err != nil {
			log.Fatalf("flowdns: %v", err)
		}
		services = append(services, store)
		st := store.Stats()
		log.Printf("flowdns: window store at %s (%d partitions, %d windows on disk)",
			store.Dir(), st.Partitions, st.Windows)
		if st.LoadErrors > 0 {
			log.Printf("flowdns: WARNING: %d partition(s) recovered from damaged segments (validated prefixes kept)", st.LoadErrors)
		}
	}

	// Stack the attribution rollup sink on top of the configured outputs;
	// the engine handle stays local for the /rollups snapshot endpoint, and
	// sealed windows fan into the store.
	var engine *rollup.Rollup
	var reload func() error
	if rcfg.Enabled {
		var onSeal func([]rollup.Window)
		if store != nil {
			onSeal = func(ws []rollup.Window) {
				if err := store.Add(ws); err != nil {
					// Failed writes stay dirty in the store and retry on the
					// next Add or the final Close; log, don't crash the seal.
					log.Printf("flowdns: window store: %v", err)
				}
			}
		}
		var closeRollup func()
		engine, sink, closeRollup, reload, err = buildRollup(rcfg, sink, outputs, onSeal)
		if err != nil {
			log.Fatalf("flowdns: %v", err)
		}
		defer closeRollup()
	}

	// Hot reload of the attribution tables: SIGHUP and POST /admin/reload
	// share the same swap path, so either trigger refreshes the BGP table
	// and blocklist without restarting (or even pausing) the pipeline.
	if reload != nil {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				if err := reload(); err != nil {
					log.Printf("flowdns: SIGHUP reload failed (tables unchanged): %v", err)
				}
			}
		}()
		log.Printf("flowdns: attribution tables hot-reloadable (SIGHUP or POST /admin/reload)")
	}

	// Query plane: /query/*, /metrics, and /rollups share one mux. It is
	// served on the query address as a lifecycle service (graceful drain),
	// and on the legacy -rollup-http address for /rollups compatibility.
	var qsrv *queryapi.Server
	if cfg.QueryAddr != "" {
		qopts := []queryapi.Option{
			queryapi.WithAddr(cfg.QueryAddr),
			queryapi.WithRollups(engine),
			queryapi.WithDraining(draining),
			queryapi.WithPipelineStats(pipelineStats),
			queryapi.WithCache(qcfg.CacheEntries),
		}
		if reload != nil {
			qopts = append(qopts, queryapi.WithReload(reload))
		}
		if chaos.admin {
			qopts = append(qopts, queryapi.WithFaultAdmin())
			log.Printf("flowdns: fault admin on http://%s/admin/fault (chaos testing)", cfg.QueryAddr)
		}
		if cluster.role == "worker" {
			// The handoff surface is late-bound like the drain flag: the
			// handlers close over the correlator pointer assigned below,
			// before Run starts the HTTP service.
			var handoffOnce sync.Once
			var handoff *forward.Handoff
			lazy := http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
				if corr == nil {
					http.Error(w, "correlator not ready", http.StatusServiceUnavailable)
					return
				}
				handoffOnce.Do(func() { handoff = forward.NewHandoff(corr) })
				handoff.Handler().ServeHTTP(w, req)
			})
			qopts = append(qopts,
				queryapi.WithAdminHandler("/admin/handoff", lazy),
				queryapi.WithAdminHandler("/admin/handoff/", lazy),
				queryapi.WithClusterInfo(func() queryapi.ClusterInfo {
					return queryapi.ClusterInfo{Role: "worker", Node: cluster.node, VNodes: cluster.vnodes}
				}),
			)
			log.Printf("flowdns: worker %q: shard handoff on http://%s/admin/handoff", cluster.node, cfg.QueryAddr)
		}
		for _, fn := range extraMetrics {
			qopts = append(qopts, queryapi.WithExtraMetrics(fn))
		}
		qsrv, err = queryapi.New(store, qopts...)
		if err != nil {
			log.Fatalf("flowdns: %v", err)
		}
		services = append(services, qsrv)
		log.Printf("flowdns: query plane on http://%s/query/ (step/top time-range queries, /metrics, /rollups)", cfg.QueryAddr)
	}
	if rcfg.HTTP != "" && rcfg.HTTP != cfg.QueryAddr {
		var h http.Handler
		if qsrv != nil {
			h = qsrv.Handler()
		} else {
			mux := http.NewServeMux()
			mux.Handle("/rollups", rollup.SnapshotHandler(engine, draining))
			h = mux
		}
		ln, err := net.Listen("tcp", rcfg.HTTP)
		if err != nil {
			log.Fatalf("flowdns: rollup http listen %s: %v", rcfg.HTTP, err)
		}
		log.Printf("flowdns: rollup snapshots on http://%s/rollups", ln.Addr())
		go func() {
			if err := http.Serve(ln, h); err != nil {
				log.Printf("flowdns: rollup http: %v", err)
			}
		}()
	}

	// Wire sources: every DNS listen address accepts any number of stream
	// connections; every NetFlow address is one collector socket.
	var sources []stream.Source
	for _, addr := range splitAddrs(*dnsListen) {
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			log.Fatalf("flowdns: dns listen %s: %v", addr, err)
		}
		log.Printf("flowdns: DNS stream listener on %s", ln.Addr())
		l := stream.NewDNSListener(ln)
		l.IdleTimeout = cfg.DNSIdleTimeout
		sources = append(sources, l)
	}
	for _, addr := range splitAddrs(*netflowListen) {
		pc, err := net.ListenPacket("udp", addr)
		if err != nil {
			log.Fatalf("flowdns: netflow listen %s: %v", addr, err)
		}
		log.Printf("flowdns: NetFlow listener on %s", pc.LocalAddr())
		src := stream.NewFlowUDPSource(pc)
		src.BatchSize = cfg.IngestBatch
		sources = append(sources, src)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	c := core.New(cfg,
		core.WithSink(sink),
		core.WithSources(sources...),
		core.WithMetrics(*statsInterval, logStats),
		core.WithServices(services...),
	)
	corr = c
	if cfg.SnapshotPath != "" {
		rst, rerr := c.RestoreResult()
		switch {
		case rerr != nil:
			// Partial restores keep every validated section; the daemon runs
			// on what was applied rather than refusing to start.
			log.Printf("flowdns: snapshot restore: %v (kept %d entries from %d sections)", rerr, rst.Entries, rst.Sections)
		case rst.Sections > 0:
			log.Printf("flowdns: restored %d entries from %s (%d expired dropped, snapshot age %v)",
				rst.Entries, cfg.SnapshotPath, rst.Expired,
				time.Since(time.Unix(0, rst.Created)).Round(time.Second))
		default:
			log.Printf("flowdns: no snapshot at %s, cold start", cfg.SnapshotPath)
		}
		log.Printf("flowdns: checkpointing to %s every %v", cfg.SnapshotPath, c.Config().SnapshotEvery)
	}
	log.Printf("flowdns: running (variant=%s, lanes=%d, fill-lanes=%d, sink=%s, batch=%d, rollup=%v)",
		*variant, c.Lanes(), c.FillLanes(), *sinkName, cfg.WriteBatchSize, engine != nil)
	if err := c.Run(ctx); err != nil {
		log.Fatalf("flowdns: %v", err)
	}
	log.Printf("flowdns: drained cleanly")
}

// configFlags carries the flag values that a -config file overrides.
type configFlags struct {
	variant                  string
	lanes, fillLanes         int
	fillWorkers, lookWorkers int
	writeWorkers, batchSize  int
	ingestBatch              int
	flushEvery               time.Duration
	snapshotPath             string
	snapshotEvery            time.Duration
	sampleLowWater           float64
	sampleHighWater          float64
	sampleMaxShed            float64
	dnsListen, netflowListen *string
	dnsIdle                  time.Duration
	retry                    *config.RetryConfig
	faultAdmin               bool
	out, sink                string
	sinkURL, measurement     string
	skipMisses               bool
	rollup                   config.RollupConfig
	query                    config.QueryConfig
	role, forwardTo, node    string
	vnodes                   int
}

// clusterSpec is the resolved cluster topology: flag or config file, one
// shape for the rest of the daemon.
type clusterSpec struct {
	role   string
	node   string
	vnodes int
	nodes  []forward.Node
}

// chaosConfig is the resolved fault-injection surface: the failpoints to arm
// at boot and whether /admin/fault is mounted.
type chaosConfig struct {
	faults map[string]string
	admin  bool
}

// armedFaults lists the currently armed failpoint specs for the startup log.
func armedFaults() []string {
	var out []string
	for _, st := range fault.List() {
		if st.Spec != "" {
			out = append(out, st.Name+"="+st.Spec)
		}
	}
	return out
}

// loadConfig resolves the correlator config, output list, and rollup/query
// settings from the config file when given, from flags otherwise.
func loadConfig(path string, f configFlags) (core.Config, []config.OutputConfig, config.RollupConfig, config.QueryConfig, chaosConfig, clusterSpec) {
	if path == "" {
		cluster := clusterSpec{role: f.role, node: f.node, vnodes: f.vnodes}
		if f.role == "router" {
			nodes, err := forward.ParseNodes(f.forwardTo)
			if err != nil {
				log.Fatalf("flowdns: -forward-to: %v", err)
			}
			cluster.nodes = nodes
		}
		cfg := core.ConfigForVariant(core.Variant(f.variant))
		cfg.Lanes = f.lanes
		cfg.FillLanes = f.fillLanes
		cfg.FillUpWorkers = f.fillWorkers
		cfg.LookUpWorkers = f.lookWorkers
		cfg.WriteWorkers = f.writeWorkers
		cfg.WriteBatchSize = f.batchSize
		cfg.WriteFlushInterval = f.flushEvery
		cfg.IngestBatch = f.ingestBatch
		cfg.SnapshotPath = f.snapshotPath
		cfg.SnapshotEvery = f.snapshotEvery
		cfg.SampleLowWater = f.sampleLowWater
		cfg.SampleHighWater = f.sampleHighWater
		cfg.SampleMaxShed = f.sampleMaxShed
		cfg.QueryAddr = f.query.Listen
		cfg.StoreDir = f.query.StoreDir
		cfg.Retention = time.Duration(f.query.RetentionSeconds) * time.Second
		cfg.CompactAfter = time.Duration(f.query.CompactAfterSeconds) * time.Second
		cfg.DNSIdleTimeout = f.dnsIdle
		return cfg, []config.OutputConfig{{Path: f.out, Sink: f.sink, SkipMisses: f.skipMisses,
				URL: f.sinkURL, Measurement: f.measurement, Retry: f.retry}}, f.rollup, f.query,
			chaosConfig{admin: f.faultAdmin}, cluster
	}
	file, err := config.Load(path)
	if err != nil {
		log.Fatalf("flowdns: %v", err)
	}
	cfg, err := file.CoreConfig()
	if err != nil {
		log.Fatalf("flowdns: %v", err)
	}
	var dnsAddrs, flowAddrs []string
	for _, s := range file.DNSStreams {
		dnsAddrs = append(dnsAddrs, s.Listen)
	}
	for _, s := range file.FlowStreams {
		flowAddrs = append(flowAddrs, s.Listen)
	}
	*f.dnsListen = strings.Join(dnsAddrs, ",")
	*f.netflowListen = strings.Join(flowAddrs, ",")
	outputs := file.AllOutputs()
	// As in v1, a config file that names no output path falls back to the
	// -out flag rather than silently switching to stdout.
	if outputs[0].Path == "" && outputs[0].NeedsWriter() {
		outputs[0].Path = f.out
	}
	cluster := clusterSpec{
		role:   file.Cluster.Role,
		node:   file.Cluster.Node,
		vnodes: file.Cluster.VNodes,
	}
	for _, n := range file.Cluster.Nodes {
		cluster.nodes = append(cluster.nodes, forward.Node{Name: n.Name, FlowAddr: n.Flow, DNSAddr: n.DNS})
	}
	return cfg, outputs, file.Rollup, file.Query, chaosConfig{faults: file.Faults, admin: file.FaultAdmin}, cluster
}

// runRouter is the -role router program: consistent-hash fan-out of every
// ingested record to the worker ring, plus /ring, /metrics, and
// /query/health on the query address. Terminates like the daemon:
// SIGINT/SIGTERM stops intake, flushes the per-node sinks, and exits.
func runRouter(cfg core.Config, cl clusterSpec, dnsAddrs, flowAddrs []string) {
	r, err := forward.NewRouter(forward.Config{
		Nodes:  cl.nodes,
		VNodes: cl.vnodes,
		Key:    cfg.Key,
	})
	if err != nil {
		log.Fatalf("flowdns: %v", err)
	}
	var sources []stream.Source
	for _, addr := range dnsAddrs {
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			log.Fatalf("flowdns: dns listen %s: %v", addr, err)
		}
		log.Printf("flowdns: DNS stream listener on %s", ln.Addr())
		l := stream.NewDNSListener(ln)
		l.IdleTimeout = cfg.DNSIdleTimeout
		sources = append(sources, l)
	}
	for _, addr := range flowAddrs {
		pc, err := net.ListenPacket("udp", addr)
		if err != nil {
			log.Fatalf("flowdns: netflow listen %s: %v", addr, err)
		}
		log.Printf("flowdns: NetFlow listener on %s", pc.LocalAddr())
		src := stream.NewFlowUDPSource(pc)
		src.BatchSize = cfg.IngestBatch
		sources = append(sources, src)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if cfg.QueryAddr != "" {
		qsrv, err := queryapi.New(nil,
			queryapi.WithAddr(cfg.QueryAddr),
			queryapi.WithExtraMetrics(r.MetricsContributor()),
			queryapi.WithAdminHandler("/ring", r.RingHandler()),
			queryapi.WithClusterInfo(func() queryapi.ClusterInfo {
				return queryapi.ClusterInfo{
					Role: "router", Node: cl.node,
					Nodes: r.Ring().Nodes(), VNodes: r.Ring().VNodes(),
				}
			}),
		)
		if err != nil {
			log.Fatalf("flowdns: %v", err)
		}
		go func() {
			if err := qsrv.Serve(ctx); err != nil {
				log.Printf("flowdns: router admin: %v", err)
			}
		}()
		log.Printf("flowdns: router admin on http://%s/ring", cfg.QueryAddr)
	}
	log.Printf("flowdns: router fanning out to %s (vnodes=%d)",
		strings.Join(r.Ring().Nodes(), ","), r.Ring().VNodes())
	if err := r.Run(ctx, sources...); err != nil {
		log.Fatalf("flowdns: %v", err)
	}
	for _, st := range r.Stats() {
		log.Printf("flowdns: node %s: flows=%d dns=%d cname=%d dnsDropped=%d spillDropped=%d",
			st.Node.Name, st.Flows, st.DNS, st.DNSCname, st.DNSDropped, st.Retry.Dropped)
	}
	log.Printf("flowdns: router drained")
}

// windowSeconds converts the -window duration to the config field's whole
// seconds, rounding fractional requests up (as rollup.New documents)
// rather than truncating toward 0 (which would mean "use the default").
// Negative values are rejected, matching the config-file validation.
func windowSeconds(d time.Duration) int {
	if d < 0 {
		log.Fatalf("flowdns: negative -window %v", d)
	}
	return int((d + time.Second - 1) / time.Second)
}

// buildRollup constructs the attribution rollup engine and its sink, and
// stacks the sink on top of base through the multi-sink. The returned
// cleanup closes the export file after the pipeline has drained.
//
// Attribution tables go through hot handles: the returned reload function
// (nil when neither table nor blocklist is configured) re-reads the
// configured files and atomically swaps them in, without stopping the
// pipeline — batches in flight finish against the table they started with,
// the next batch sees the new one, and no lookup is ever dropped. It serves
// both SIGHUP and POST /admin/reload.
func buildRollup(rc config.RollupConfig, base core.Sink, outputs []config.OutputConfig, onSeal func([]rollup.Window)) (*rollup.Rollup, core.Sink, func(), func() error, error) {
	format, err := rollup.ParseFormat(rc.Format)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	engine := rollup.New(rc.Window(), rc.Shards)
	opts := []rollup.SinkOption{rollup.WithRotation(rc.Window())}
	if onSeal != nil {
		opts = append(opts, rollup.WithOnSeal(onSeal))
	}
	var hotTable *bgp.Hot
	if rc.BGPTable != "" {
		table, err := bgp.LoadTable(rc.BGPTable)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		hotTable = bgp.NewHot(table) // freezes: the sink's Write workers only read
		opts = append(opts, rollup.WithHotTable(hotTable))
		log.Printf("flowdns: rollup: %d BGP prefixes loaded from %s", table.Len(), rc.BGPTable)
	}
	var hotList *dbl.Hot
	if rc.Blocklist != "" {
		list, err := dbl.LoadList(rc.Blocklist)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		hotList = dbl.NewHot(list)
		opts = append(opts, rollup.WithHotBlocklist(hotList))
		log.Printf("flowdns: rollup: %d blocklisted domains loaded from %s", list.Len(), rc.Blocklist)
	}
	var reload func() error
	if hotTable != nil || hotList != nil {
		reload = func() error {
			// Load everything before swapping anything: a reload that fails
			// halfway must leave both tables as they were, not half-new.
			var table *bgp.Table
			var list *dbl.List
			if hotTable != nil {
				var err error
				if table, err = bgp.LoadTable(rc.BGPTable); err != nil {
					return fmt.Errorf("bgp table %s: %w", rc.BGPTable, err)
				}
			}
			if hotList != nil {
				var err error
				if list, err = dbl.LoadList(rc.Blocklist); err != nil {
					return fmt.Errorf("blocklist %s: %w", rc.Blocklist, err)
				}
			}
			if table != nil {
				hotTable.Swap(table)
				log.Printf("flowdns: reloaded %d BGP prefixes from %s", table.Len(), rc.BGPTable)
			}
			if list != nil {
				hotList.Swap(list)
				log.Printf("flowdns: reloaded %d blocklisted domains from %s", list.Len(), rc.Blocklist)
			}
			return nil
		}
	}
	cleanup := func() {}
	switch rc.Path {
	case "":
		// No file export: windows reachable via /rollups until sealed.
	case "-":
		// Same rule buildSink enforces: two independently buffered writers
		// on stdout would interleave rows mid-line.
		for _, o := range outputs {
			if o.NeedsWriter() && (o.Path == "" || o.Path == "-") {
				return nil, nil, nil, nil, errors.New("rollup export and an output sink both write to stdout")
			}
		}
		opts = append(opts, rollup.WithExport(os.Stdout, format))
	default:
		for _, o := range outputs {
			if o.Path == rc.Path {
				return nil, nil, nil, nil, fmt.Errorf("rollup export path %q already used by an output sink", rc.Path)
			}
		}
		f, err := os.Create(rc.Path)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		cleanup = func() { f.Close() }
		opts = append(opts, rollup.WithExport(f, format))
	}
	rsink := rollup.NewSink(engine, opts...)
	if ms, ok := base.(core.MultiSink); ok {
		return engine, append(ms, rsink), cleanup, reload, nil
	}
	return engine, core.MultiSink{base, rsink}, cleanup, reload, nil
}

// buildSink constructs the configured sink(s); several outputs fan out
// through a MultiSink. Outputs with a retry block are wrapped in a
// core.RetrySink. The returned cleanup closes any opened files after the
// pipeline has flushed; the metrics contributors export per-sink counters
// (Influx drops, retry/spill depths) on /metrics.
func buildSink(outputs []config.OutputConfig) (core.Sink, func(), []func(*metrics.PromWriter), error) {
	var files []*os.File
	closeFiles := func() {
		for _, f := range files {
			f.Close()
		}
	}
	var sinks []core.Sink
	var extra []func(*metrics.PromWriter)
	stdoutOutputs := 0
	seenPaths := make(map[string]bool)
	for i, o := range outputs {
		var w io.Writer
		switch {
		case !o.NeedsWriter():
			// counting/discard ignore the writer; do not create (and
			// truncate) a file nothing will ever write to.
		case o.Path != "" && o.Path != "-":
			// Two sinks on one file would truncate each other and
			// interleave independent write buffers mid-line.
			if seenPaths[o.Path] {
				closeFiles()
				return nil, nil, nil, fmt.Errorf("output path %q used by more than one sink", o.Path)
			}
			seenPaths[o.Path] = true
			f, err := os.Create(o.Path)
			if err != nil {
				closeFiles()
				return nil, nil, nil, err
			}
			files = append(files, f)
			w = f
		default:
			// Two record-writing sinks sharing stdout would interleave
			// their independent write buffers mid-line.
			if stdoutOutputs++; stdoutOutputs > 1 {
				closeFiles()
				return nil, nil, nil, errors.New("at most one output may write to stdout")
			}
			w = os.Stdout
		}
		s, err := o.NewSink(w)
		if err != nil {
			closeFiles()
			return nil, nil, nil, err
		}
		label := o.Sink
		if label == "" {
			label = "tsv"
		}
		label = fmt.Sprintf("%s[%d]", label, i)
		if is, ok := s.(*influxsink.Sink); ok {
			extra = append(extra, influxSinkMetrics(label, is))
		}
		if o.Retry != nil {
			rs, err := core.NewRetrySink(s, o.Retry.Core())
			if err != nil {
				closeFiles()
				return nil, nil, nil, err
			}
			extra = append(extra, retrySinkMetrics(label, rs))
			s = rs
		}
		sinks = append(sinks, s)
	}
	if len(sinks) == 1 {
		return sinks[0], closeFiles, extra, nil
	}
	return core.MultiSink(sinks), closeFiles, extra, nil
}

// retrySinkMetrics exports one RetrySink's accounting under a sink label.
func retrySinkMetrics(label string, rs *core.RetrySink) func(*metrics.PromWriter) {
	lbl := map[string]string{"sink": label}
	return func(p *metrics.PromWriter) {
		st := rs.Stats()
		p.Counter("flowdns_retry_delivered_total", "Records the wrapped sink accepted.", lbl, st.Delivered)
		p.Counter("flowdns_retry_retries_total", "Retry attempts after a failed write.", lbl, st.Retries)
		p.Counter("flowdns_retry_spilled_total", "Records diverted to the spill queue.", lbl, st.Spilled)
		p.Counter("flowdns_retry_replayed_total", "Spilled records later delivered.", lbl, st.Replayed)
		p.Counter("flowdns_retry_dropped_total", "Records dropped against full spill bounds.", lbl, st.Dropped)
		p.Counter("flowdns_retry_panics_contained_total", "Inner-sink panics converted to errors.", lbl, st.PanicsContained)
		p.GaugeInt("flowdns_retry_spill_depth", "Backlogged records (memory + disk).", lbl, int64(st.SpillDepth))
		p.GaugeInt("flowdns_retry_spill_disk_depth", "Backlogged records on disk.", lbl, int64(st.DiskDepth))
		p.GaugeInt("flowdns_retry_spill_bytes", "Spill file size.", lbl, st.SpillBytes)
	}
}

// influxSinkMetrics exports one Influx sink's accounting under a sink label.
func influxSinkMetrics(label string, is *influxsink.Sink) func(*metrics.PromWriter) {
	lbl := map[string]string{"sink": label}
	return func(p *metrics.PromWriter) {
		st := is.SinkStats()
		p.Counter("flowdns_influx_points_total", "Line-protocol points buffered.", lbl, st.Points)
		p.Counter("flowdns_influx_sends_total", "Successful batch sends.", lbl, st.Sends)
		p.Counter("flowdns_influx_send_errors_total", "Failed batch sends.", lbl, st.SendErrors)
		p.Counter("flowdns_influx_dropped_bytes_total", "Buffered bytes dropped at the buffer bound.", lbl, st.DroppedBytes)
		p.Counter("flowdns_influx_dropped_records_total", "Buffered records dropped at the buffer bound.", lbl, st.DroppedRecords)
		p.Counter("flowdns_influx_dropped_batches_total", "Bound-enforcement passes that dropped data.", lbl, st.DroppedBatches)
	}
}

func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

func logStats(st core.Stats) {
	log.Printf("flowdns: dns=%d flows=%d corr=%.3f(bytes) loss=%.5f ipname=%d namecname=%d writeDelay=%v",
		st.DNSRecords, st.Flows, st.CorrelationRate(), st.LossRate(),
		st.IPNameEntries, st.NameCnameEntries, time.Duration(st.MaxWriteDelayNs).Round(time.Millisecond))
	// A failing checkpointer must be loud: a daemon that silently writes no
	// snapshots delivers its bad news as a cold restart after the crash.
	if st.CheckpointErrors > 0 {
		log.Printf("flowdns: WARNING: %d checkpoint write(s) failed (%d succeeded); next restart may be cold",
			st.CheckpointErrors, st.Checkpoints)
	}
}
