// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run fig2 [-scale 0.5] [-quiet]
//	experiments -run all
//
// Each experiment prints the rows/series the paper plots plus a one-line
// headline comparing against the paper's reported numbers. See DESIGN.md §5
// for the experiment index and EXPERIMENTS.md for recorded results.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list available experiments")
		run   = flag.String("run", "", "comma-separated experiment ids, or 'all'")
		scale = flag.Float64("scale", 1.0, "workload scale in (0,1]; smaller is faster")
		quiet = flag.Bool("quiet", false, "print only headlines, not full series")
	)
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("available experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-10s %-28s %s\n", e.ID, e.Paper, e.Title)
		}
		if *run == "" && !*list {
			fmt.Println("\nrun with: experiments -run <id>[,<id>...] | all")
		}
		return
	}

	ids := strings.Split(*run, ",")
	if *run == "all" {
		ids = ids[:0]
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	}
	failed := false
	for _, id := range ids {
		id = strings.TrimSpace(id)
		e, ok := experiments.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
			failed = true
			continue
		}
		start := time.Now()
		r := e.Run(*scale)
		fmt.Printf("=== %s — %s (%s)\n", e.ID, e.Title, e.Paper)
		if !*quiet {
			for _, line := range r.Lines {
				fmt.Println("  " + line)
			}
		}
		fmt.Printf("--- %s [%v]\n\n", r.Headline, time.Since(start).Round(time.Millisecond))
	}
	if failed {
		os.Exit(1)
	}
}
