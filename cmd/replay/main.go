// Command replay correlates captured streams offline.
//
// The paper (§1) notes that when processing is done offline "the
// timestamps need to be taken into account and the two sources of data,
// namely Netflow and DNS records, need to be correlated in the window
// where the DNS record is still valid". This tool does exactly that: it
// merges a DNS capture and a flow capture by record timestamp and replays
// them through the correlator, whose clear-up clock advances on record
// time — so the offline result matches what the live system produced.
//
// Generate captures from the synthetic ISP, then correlate them:
//
//	replay -gen -hours 2 -dns-out dns.tsv -flows-out flows.tsv
//	replay -dns dns.tsv -flows flows.tsv -out correlated.tsv
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/netflow"
	"repro/internal/stream"
	"repro/internal/workload"
)

func main() {
	var (
		gen      = flag.Bool("gen", false, "generate synthetic captures instead of correlating")
		hours    = flag.Int("hours", 2, "capture length in simulated hours (with -gen)")
		dnsRate  = flag.Int("dns-rate", 1000, "DNS query events per simulated hour (with -gen)")
		flowRate = flag.Int("flow-rate", 10000, "flow records per simulated hour (with -gen)")
		seed     = flag.Int64("seed", 1, "generator seed (with -gen)")
		dnsPath  = flag.String("dns", "dns.tsv", "DNS capture path (input, or output with -gen)")
		flowPath = flag.String("flows", "flows.tsv", "flow capture path (input, or output with -gen)")
		dnsOut   = flag.String("dns-out", "", "alias for -dns when generating")
		flowsOut = flag.String("flows-out", "", "alias for -flows when generating")
		out      = flag.String("out", "-", "correlated output path ('-' = stdout)")
		variant  = flag.String("variant", "Main", "correlator variant")
		sinkName = flag.String("sink", "tsv", "output sink: tsv or json")
		batch    = flag.Int("batch-size", core.DefaultWriteBatchSize, "correlated flows per sink WriteBatch call")
	)
	flag.Parse()
	if *dnsOut != "" {
		*dnsPath = *dnsOut
	}
	if *flowsOut != "" {
		*flowPath = *flowsOut
	}

	if *gen {
		generate(*hours, *dnsRate, *flowRate, *seed, *dnsPath, *flowPath)
		return
	}
	correlate(*dnsPath, *flowPath, *out, core.Variant(*variant), *sinkName, *batch)
}

func generate(hours, dnsRate, flowRate int, seed int64, dnsPath, flowPath string) {
	u := workload.NewUniverse(workload.DefaultConfig())
	g := workload.NewGenerator(u, seed)

	dnsFile, err := os.Create(dnsPath)
	if err != nil {
		log.Fatalf("replay: %v", err)
	}
	defer dnsFile.Close()
	flowFile, err := os.Create(flowPath)
	if err != nil {
		log.Fatalf("replay: %v", err)
	}
	defer flowFile.Close()
	dw := stream.NewDNSFileWriter(dnsFile)
	fw := stream.NewFlowFileWriter(flowFile)

	start := time.Date(2022, 5, 25, 0, 0, 0, 0, time.UTC)
	const steps = 12
	var nDNS, nFlows int
	for h := 0; h < hours; h++ {
		mult := workload.DiurnalMultiplier(float64(h % 24))
		for s := 0; s < steps; s++ {
			ts := start.Add(time.Duration(h)*time.Hour + time.Duration(s)*time.Hour/steps)
			for _, rec := range g.DNSBatch(ts, int(float64(dnsRate)*mult)/steps) {
				if err := dw.Write(rec); err != nil {
					log.Fatalf("replay: %v", err)
				}
				nDNS++
			}
			for _, fr := range g.FlowBatch(ts, int(float64(flowRate)*mult)/steps) {
				if err := fw.Write(fr); err != nil {
					log.Fatalf("replay: %v", err)
				}
				nFlows++
			}
		}
	}
	if err := dw.Flush(); err != nil {
		log.Fatalf("replay: %v", err)
	}
	if err := fw.Flush(); err != nil {
		log.Fatalf("replay: %v", err)
	}
	log.Printf("replay: wrote %d DNS records to %s and %d flow records to %s",
		nDNS, dnsPath, nFlows, flowPath)
}

func correlate(dnsPath, flowPath, outPath string, variant core.Variant, sinkName string, batchSize int) {
	dnsFile, err := os.Open(dnsPath)
	if err != nil {
		log.Fatalf("replay: %v", err)
	}
	defer dnsFile.Close()
	dns, err := stream.ReadDNSFile(dnsFile)
	if err != nil {
		log.Fatalf("replay: %v", err)
	}
	flowFile, err := os.Open(flowPath)
	if err != nil {
		log.Fatalf("replay: %v", err)
	}
	defer flowFile.Close()
	flows, err := stream.ReadFlowFile(flowFile)
	if err != nil {
		log.Fatalf("replay: %v", err)
	}

	// Replay exists to produce an output file; writer-less sinks would
	// silently leave it empty.
	if !core.SinkNeedsWriter(sinkName) {
		log.Fatalf("replay: -sink must be a record-writing sink (e.g. tsv, json), not %q", sinkName)
	}
	w := os.Stdout
	if outPath != "-" {
		f, err := os.Create(outPath)
		if err != nil {
			log.Fatalf("replay: %v", err)
		}
		defer f.Close()
		w = f
	}
	sink, err := core.NewSinkByName(sinkName, core.SinkOptions{W: w})
	if err != nil {
		log.Fatalf("replay: %v", err)
	}
	c := core.New(core.ConfigForVariant(variant), core.WithSink(sink))

	// The replay is deterministic and synchronous (record-clock ordering),
	// but writes still go out in batches: correlated flows accumulate and
	// reach the sink through the same amortized WriteBatch path the live
	// Write workers use.
	if batchSize < 1 {
		batchSize = core.DefaultWriteBatchSize
	}
	ctx := context.Background()
	batch := make([]core.CorrelatedFlow, 0, batchSize)
	flush := func() {
		if len(batch) == 0 {
			return
		}
		if err := sink.WriteBatch(ctx, batch); err != nil {
			log.Fatalf("replay: %v", err)
		}
		batch = batch[:0]
	}
	start := time.Now()
	stream.MergeByTime(dns, flows,
		c.IngestDNS,
		func(fr netflow.FlowRecord) {
			batch = append(batch, c.CorrelateFlow(fr))
			if len(batch) >= batchSize {
				flush()
			}
		},
	)
	flush()
	if err := sink.Flush(); err != nil {
		log.Fatalf("replay: %v", err)
	}
	if err := sink.Close(); err != nil {
		log.Fatalf("replay: %v", err)
	}
	st := c.Stats()
	fmt.Fprintf(os.Stderr,
		"replay: %d DNS + %d flows in %v; correlation %.3f (bytes), tiers active=%d inactive=%d long=%d\n",
		st.DNSRecords, st.Flows, time.Since(start).Round(time.Millisecond),
		st.CorrelationRate(), st.HitActive, st.HitInactive, st.HitLong)
}
