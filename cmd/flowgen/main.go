// Command flowgen emits the synthetic ISP streams against a running FlowDNS
// collector: DNS responses as length-prefixed messages over TCP and NetFlow
// v9 exports over UDP.
//
// Pair it with cmd/flowdns to reproduce the paper's deployment topology on
// loopback:
//
//	flowdns -dns-listen :5353 -netflow-listen :2055 -out corr.tsv &
//	flowgen -dns 127.0.0.1:5353 -netflow 127.0.0.1:2055 \
//	        -dns-rate 500 -flow-rate 5000 -duration 30s
//
// Rates are records per second; the generator follows the paper's diurnal
// curve when -diurnal is set (one simulated day per -day-period).
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"net/netip"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/dnswire"
	"repro/internal/stream"
	"repro/internal/workload"
)

func parseAddr(s string) (netip.Addr, error) { return netip.ParseAddr(s) }

func main() {
	var (
		dnsAddr   = flag.String("dns", "127.0.0.1:5353", "FlowDNS DNS TCP address")
		nfAddr    = flag.String("netflow", "127.0.0.1:2055", "FlowDNS NetFlow UDP address")
		dnsRate   = flag.Int("dns-rate", 200, "DNS query events per second")
		flowRate  = flag.Int("flow-rate", 2000, "flow records per second")
		duration  = flag.Duration("duration", 10*time.Second, "how long to emit")
		seed      = flag.Int64("seed", 1, "generator seed")
		services  = flag.Int("services", 4000, "service universe size")
		diurnal   = flag.Bool("diurnal", false, "scale rates by the diurnal curve")
		dayPeriod = flag.Duration("day-period", 24*time.Minute, "wall time of one simulated day when -diurnal")
	)
	flag.Parse()

	ucfg := workload.DefaultConfig()
	ucfg.NumServices = *services
	u := workload.NewUniverse(ucfg)
	g := workload.NewGenerator(u, *seed)

	dnsConn, err := net.Dial("tcp", *dnsAddr)
	if err != nil {
		log.Fatalf("flowgen: dns dial: %v", err)
	}
	defer dnsConn.Close()
	dnsSink := stream.NewDNSTCPSink(dnsConn)

	nfConn, err := net.Dial("udp", *nfAddr)
	if err != nil {
		log.Fatalf("flowgen: netflow dial: %v", err)
	}
	defer nfConn.Close()
	nfSink := stream.NewFlowUDPSink(nfConn, 1, 20)

	// SIGINT/SIGTERM ends the emission early but cleanly (final flush).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	log.Printf("flowgen: emitting %d dns/s + %d flows/s for %v", *dnsRate, *flowRate, *duration)
	start := time.Now()
	ticker := time.NewTicker(100 * time.Millisecond)
	defer ticker.Stop()
	var sentDNS, sentFlows int
emit:
	for {
		var now time.Time
		select {
		case <-ctx.Done():
			break emit
		case now = <-ticker.C:
		}
		if now.Sub(start) > *duration {
			break
		}
		mult := 1.0
		ts := now
		if *diurnal {
			frac := now.Sub(start).Seconds() / dayPeriod.Seconds()
			hour := 24 * (frac - float64(int(frac)))
			mult = workload.DiurnalMultiplier(hour)
			// Stretch the record clock so the correlator's clear-up
			// intervals see a full simulated day.
			ts = start.Add(time.Duration(float64(24*time.Hour) * frac))
		}
		nDNS := int(float64(*dnsRate) * mult / 10)
		nFlows := int(float64(*flowRate) * mult / 10)
		for i := 0; i < nDNS; i++ {
			msg := toMessage(g.DNSQueryEvent(ts))
			if msg == nil {
				continue
			}
			if err := dnsSink.Send(msg); err != nil {
				log.Fatalf("flowgen: dns send: %v", err)
			}
			sentDNS++
		}
		for _, fr := range g.FlowBatch(ts, nFlows) {
			if !fr.SrcIP.Is4() || !fr.DstIP.Is4() {
				continue // the standard v9 template is IPv4
			}
			if err := nfSink.Send(fr); err != nil {
				log.Fatalf("flowgen: netflow send: %v", err)
			}
			sentFlows++
		}
		if err := nfSink.Flush(); err != nil {
			log.Fatalf("flowgen: netflow flush: %v", err)
		}
	}
	log.Printf("flowgen: done; %d DNS query events, %d flow records", sentDNS, sentFlows)
}

// toMessage re-assembles the flattened records of one query event into a
// DNS response message for the wire.
func toMessage(recs []stream.DNSRecord) *dnswire.Message {
	if len(recs) == 0 {
		return nil
	}
	m := &dnswire.Message{
		Header: dnswire.Header{Response: true, RecursionDesired: true, RecursionAvailable: true},
	}
	m.Questions = []dnswire.Question{{Name: recs[0].Query, Type: dnswire.TypeA, Class: dnswire.ClassIN}}
	for _, rec := range recs {
		r := dnswire.Record{Name: rec.Query, Type: rec.RType, Class: dnswire.ClassIN, TTL: rec.TTL}
		switch rec.RType {
		case dnswire.TypeCNAME:
			r.Target = rec.Answer
		default:
			r.Addr = rec.Addr
			if !r.Addr.IsValid() {
				addr, err := parseAddr(rec.Answer)
				if err != nil {
					continue
				}
				r.Addr = addr
			}
		}
		m.Answers = append(m.Answers, r)
	}
	if len(m.Answers) == 0 {
		return nil
	}
	return m
}
