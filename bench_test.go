// Repository-level benchmarks: one per table/figure of the paper's
// evaluation (see DESIGN.md §5 for the experiment index). Each benchmark
// executes the corresponding experiment end to end — workload generation,
// correlation, measurement — and reports the experiment's key metrics as
// custom benchmark outputs, so `go test -bench=. -benchmem` regenerates the
// whole evaluation in one run.
//
// Absolute resource numbers differ from the paper's 128-core testbed by
// construction; the metrics to compare are the *shapes*: correlation-rate
// ordering across variants, NoClearUp state growth, exact-TTL collapse,
// distribution percentiles.
package repro

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bgp"
	"repro/internal/core"
	"repro/internal/dbl"
	"repro/internal/dnswire"
	"repro/internal/experiments"
	"repro/internal/netflow"
	"repro/internal/queryapi"
	"repro/internal/rollup"
	"repro/internal/stream"
	"repro/internal/winstore"
)

// benchScale balances fidelity and wall time; heavyweight multi-day
// experiments run at reduced (but still substantial) scale.
const (
	benchScaleHeavy = 0.35
	benchScaleLight = 1.0
)

func runExperiment(b *testing.B, id string, scale float64, metrics []string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	var r *experiments.Result
	for i := 0; i < b.N; i++ {
		r = e.Run(scale)
	}
	if r == nil {
		b.Fatal("no result")
	}
	for _, m := range metrics {
		if v, ok := r.Values[m]; ok {
			b.ReportMetric(v, m)
		} else {
			b.Fatalf("metric %q missing from %s", m, id)
		}
	}
	b.Logf("%s: %s", id, r.Headline)
}

// --- batched-vs-per-record sink write path (API v2 redesign) ---
//
// The v1 Sink wrote one record per call behind a mutex with fmt.Fprintf;
// the v2 Write workers hand the sink size/time-bounded batches that
// amortize one lock acquisition and one buffered write per batch.
// BenchmarkSinkWrite/per-record-v1 replicates the old cost model;
// /batch=1 isolates the interface change; /batch=64 and /batch=256 are
// the deployed path. Run with:
//
//	go test -bench=BenchmarkSinkWrite -benchmem .

// legacyTSVSink replicates the v1 per-record write path for comparison.
type legacyTSVSink struct {
	mu sync.Mutex
	w  *bufio.Writer
}

func (s *legacyTSVSink) write(cf core.CorrelatedFlow) {
	name := cf.Name
	if name == "" {
		name = "NULL"
	}
	s.mu.Lock()
	fmt.Fprintf(s.w, "%d\t%s\t%s\t%d\t%d\t%s\t%s\t%d\n",
		cf.Flow.Timestamp.Unix(), cf.Flow.SrcIP, cf.Flow.DstIP,
		cf.Flow.Bytes, cf.Flow.Packets, name, cf.Tier, cf.ChainLen)
	s.mu.Unlock()
}

func benchDNSRecord(ts time.Time, i int) stream.DNSRecord {
	return stream.DNSRecord{
		Timestamp: ts,
		Query:     fmt.Sprintf("svc%d.example", i),
		RType:     dnswire.TypeA,
		TTL:       300,
		Answer:    netip.AddrFrom4([4]byte{198, 51, byte(i / 250), byte(i%250 + 1)}).String(),
	}
}

func benchCorrelatedFlows(n int) []core.CorrelatedFlow {
	t0 := time.Unix(1653475200, 0)
	out := make([]core.CorrelatedFlow, n)
	for i := range out {
		out[i] = core.CorrelatedFlow{
			Flow: netflow.FlowRecord{
				Timestamp: t0,
				SrcIP:     netip.AddrFrom4([4]byte{198, 51, byte(i / 250), byte(i%250 + 1)}),
				DstIP:     netip.AddrFrom4([4]byte{10, 0, 0, 1}),
				SrcPort:   443, DstPort: 50000, Proto: netflow.ProtoTCP,
				Packets: 10, Bytes: 1500,
			},
			Name: fmt.Sprintf("svc%d.example", i%512),
			Tier: core.TierActive,
		}
	}
	return out
}

func BenchmarkSinkWrite(b *testing.B) {
	const n = 4096
	flows := benchCorrelatedFlows(n)
	ctx := context.Background()

	b.Run("per-record-v1", func(b *testing.B) {
		s := &legacyTSVSink{w: bufio.NewWriterSize(io.Discard, 1<<16)}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.write(flows[i%n])
		}
	})
	for _, size := range []int{1, 64, 256} {
		b.Run(fmt.Sprintf("batch=%d", size), func(b *testing.B) {
			sink := core.NewTSVSink(io.Discard)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i += size {
				end := i%n + size
				if end > n {
					end = n
				}
				if err := sink.WriteBatch(ctx, flows[i%n:end]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// Under write-worker contention the lock amortization dominates.
	b.Run("parallel/per-record-v1", func(b *testing.B) {
		s := &legacyTSVSink{w: bufio.NewWriterSize(io.Discard, 1<<16)}
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				s.write(flows[i%n])
				i++
			}
		})
	})
	b.Run("parallel/batch=256", func(b *testing.B) {
		sink := core.NewTSVSink(io.Discard)
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			batch := make([]core.CorrelatedFlow, 0, 256)
			for pb.Next() {
				batch = append(batch, flows[i%n])
				i++
				if len(batch) == 256 {
					if err := sink.WriteBatch(ctx, batch); err != nil {
						b.Fatal(err)
					}
					batch = batch[:0]
				}
			}
			if len(batch) > 0 {
				sink.WriteBatch(ctx, batch)
			}
		})
	})
}

// BenchmarkPipelineBatchedWrites measures the full async pipeline with the
// v2 batched write path: offered records per second from ingest façade to
// sink across all stages.
func BenchmarkPipelineBatchedWrites(b *testing.B) {
	const services = 512
	t0 := time.Unix(1653475200, 0)
	flows := make([]netflow.FlowRecord, 4096)
	for i := range flows {
		flows[i] = netflow.FlowRecord{
			Timestamp: t0,
			SrcIP:     netip.AddrFrom4([4]byte{198, 51, byte((i % services) / 250), byte((i%services)%250 + 1)}),
			DstIP:     netip.AddrFrom4([4]byte{10, 0, 0, 1}),
			SrcPort:   443, DstPort: 50000, Proto: netflow.ProtoTCP,
			Packets: 10, Bytes: 1500,
		}
	}
	for _, batch := range []int{1, 256} {
		b.Run(fmt.Sprintf("writeBatch=%d", batch), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.WriteBatchSize = batch
			cfg.WriteFlushInterval = time.Millisecond
			c := core.New(cfg, core.WithSink(core.NewTSVSink(io.Discard)))
			ctx, cancel := context.WithCancel(context.Background())
			runDone := make(chan error, 1)
			go func() { runDone <- c.Run(ctx) }()
			for i := 0; i < services; i++ {
				c.OfferDNS(benchDNSRecord(t0, i))
			}
			for c.Stats().DNSRecords < services {
				time.Sleep(time.Millisecond)
			}
			b.ReportAllocs()
			b.ResetTimer()
			// Offer with backpressure (never drop) and time until the sink
			// has written everything, so the measurement is true
			// ingest-to-sink throughput, not queue-offer cost.
			var offered uint64
			for i := 0; i < b.N; i += 512 {
				for {
					_, look, write := c.QueueDepths()
					if look < cfg.LookQueueCap/2 && write < cfg.WriteQueueCap/2 {
						break
					}
					time.Sleep(10 * time.Microsecond)
				}
				offered += uint64(c.OfferFlowBatch(flows[:512]))
			}
			for c.Stats().Written < offered {
				// A drop between the queues would make Written permanently
				// short of offered; fail instead of hanging.
				if st := c.Stats(); st.LookQueue.Dropped+st.WriteQueue.Dropped > 0 {
					b.Fatalf("benchmark dropped records (look=%d write=%d); backpressure broken",
						st.LookQueue.Dropped, st.WriteQueue.Dropped)
				}
				time.Sleep(50 * time.Microsecond)
			}
			b.StopTimer()
			cancel()
			<-runDone
		})
	}
}

// BenchmarkRollupObserve measures the attribution-rollup hot path. It is
// part of the benchstat-guarded set (scripts/benchregress.sh): the rollup
// sink rides the Write stage of every flow, so a regression here is a
// regression of the whole pipeline's ceiling. All three variants must
// report 0 allocs/op — the hit path (window and key already seen on the
// shard) is allocation-free by design.
//
//   - engine: Rollup.Observe alone, single shard.
//   - sink: the full attributed path per record — BGP longest-prefix match
//     on the source address, blocklist category for the service, Observe —
//     through Sink.WriteBatch in deployment-sized batches.
//   - engine/parallel: concurrent observers on distinct shards (the
//     per-worker shard assignment), checking the no-contention claim.
func BenchmarkRollupObserve(b *testing.B) {
	t0 := time.Unix(1653475200, 0)
	const services = 512
	keys := make([]rollup.Key, services)
	for i := range keys {
		keys[i] = rollup.Key{
			Service:  fmt.Sprintf("svc%d.example", i),
			ASN:      uint32(64500 + i%16),
			Category: dbl.Category(i % 6),
		}
	}

	b.Run("engine", func(b *testing.B) {
		r := rollup.New(time.Minute, 8)
		for _, k := range keys {
			r.Observe(0, t0, k, 1, 1) // seed the hit path
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Observe(0, t0, keys[i%services], 1500, 10)
		}
	})

	b.Run("sink", func(b *testing.B) {
		table := bgp.NewTable()
		list := dbl.NewList()
		flows := benchCorrelatedFlows(4096)
		for i := range flows {
			prefix, err := flows[i].Flow.SrcIP.Prefix(24)
			if err != nil {
				b.Fatal(err)
			}
			if err := table.Insert(prefix, uint32(64500+i%16)); err != nil {
				b.Fatal(err)
			}
			if i%7 == 0 {
				list.Add(flows[i].Name, dbl.Spam)
			}
		}
		table.Freeze()
		r := rollup.New(time.Minute, 8)
		sink := rollup.NewSink(r, rollup.WithTable(table), rollup.WithBlocklist(list))
		ctx := context.Background()
		for s := 0; s < r.Shards(); s++ {
			sink.WriteBatch(ctx, flows) // seed every shard's hit path
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i += 256 {
			off := (i / 256 * 256) % 4096
			if err := sink.WriteBatch(ctx, flows[off:off+256]); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("engine/parallel", func(b *testing.B) {
		r := rollup.New(time.Minute, 2*runtime.GOMAXPROCS(0))
		for s := 0; s < r.Shards(); s++ {
			for _, k := range keys {
				r.Observe(s, t0, k, 1, 1)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			shard := r.NextShard() // one shard per observer, as the sink assigns
			i := 0
			for pb.Next() {
				r.Observe(shard, t0, keys[i%services], 1500, 10)
				i++
			}
		})
	})
}

// BenchmarkCorrelate measures the LookUp hot path in isolation: the cost of
// resolving one flow against a populated IP-NAME store (Algorithm 2), serial
// and under full multi-core contention. The parallel variant is the number
// the sharded-lane design targets: with lanes aligned to the store layout,
// concurrent LookUp workers touch disjoint shard slices and scale with
// cores instead of serializing on shared generations.
func BenchmarkCorrelate(b *testing.B) {
	const services = 4096
	t0 := time.Unix(1653475200, 0)
	mkFlows := func() []netflow.FlowRecord {
		flows := make([]netflow.FlowRecord, services)
		for i := range flows {
			flows[i] = netflow.FlowRecord{
				Timestamp: t0,
				SrcIP:     netip.AddrFrom4([4]byte{198, 51, byte(i / 250), byte(i%250 + 1)}),
				DstIP:     netip.AddrFrom4([4]byte{203, 0, byte(i / 250), byte(i%250 + 1)}),
				SrcPort:   443, DstPort: 50000, Proto: netflow.ProtoTCP,
				Packets: 10, Bytes: 1500,
			}
		}
		return flows
	}
	fill := func(c *core.Correlator) {
		for i := 0; i < services; i++ {
			c.IngestDNS(benchDNSRecord(t0, i))
		}
	}

	b.Run("hit", func(b *testing.B) {
		c := core.New(core.DefaultConfig())
		fill(c)
		flows := mkFlows()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cf := c.CorrelateFlow(flows[i%services])
			if !cf.Correlated() {
				b.Fatal("expected hit")
			}
		}
	})
	b.Run("miss", func(b *testing.B) {
		c := core.New(core.DefaultConfig())
		fill(c)
		flows := mkFlows()
		for i := range flows {
			flows[i].SrcIP = netip.AddrFrom4([4]byte{192, 0, 2, byte(i%250 + 1)})
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.CorrelateFlow(flows[i%services])
		}
	})
	b.Run("parallel", func(b *testing.B) {
		c := core.New(core.DefaultConfig())
		fill(c)
		flows := mkFlows()
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				c.CorrelateFlow(flows[i%services])
				i++
			}
		})
	})
	// The lane-worker path at the acceptance configuration: 8 lanes,
	// batch lookups with amortized stats, as the sharded pipeline runs it.
	b.Run("parallel/lanes=8", func(b *testing.B) {
		cfg := core.DefaultConfig()
		cfg.Lanes = 8
		c := core.New(cfg)
		fill(c)
		flows := mkFlows()
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			in := make([]netflow.FlowRecord, 0, 128)
			out := make([]core.CorrelatedFlow, 0, 128)
			for pb.Next() {
				in = append(in, flows[i%services])
				i++
				if len(in) == cap(in) {
					out = c.CorrelateBatch(out[:0], in)
					in = in[:0]
				}
			}
			if len(in) > 0 {
				c.CorrelateBatch(out[:0], in)
			}
		})
	})
}

func BenchmarkTable1Config(b *testing.B) {
	runExperiment(b, "table1", benchScaleLight,
		[]string{"a_clear_up_seconds", "c_clear_up_seconds", "num_split", "chain_limit"})
}

// BenchmarkFig2MainWeek regenerates Figure 2: CPU and memory usage of the
// Main configuration over one simulated week with diurnal traffic.
func BenchmarkFig2MainWeek(b *testing.B) {
	runExperiment(b, "fig2", benchScaleHeavy,
		[]string{"traffic_peak_over_trough", "entries_peak_over_trough", "mean_corr_rate", "loss_rate"})
}

// BenchmarkFig3Variants regenerates Figure 3: CPU and memory for
// Main/NoClearUp/NoLong/NoRotation/NoSplit over one simulated day.
func BenchmarkFig3Variants(b *testing.B) {
	runExperiment(b, "fig3", benchScaleHeavy,
		[]string{"Main_corr", "NoClearUp_corr", "NoLong_corr", "NoRotation_corr", "NoSplit_corr",
			"Main_entries_end", "NoClearUp_entries_end"})
}

// BenchmarkFig4ASAttribution regenerates Figure 4: per-source-AS traffic
// for the two streaming services over a week.
func BenchmarkFig4ASAttribution(b *testing.B) {
	runExperiment(b, "fig4", benchScaleHeavy,
		[]string{"s1_as_count", "s2_as_count", "s1_top1_share", "s2_top2_share"})
}

// BenchmarkFig5Malicious regenerates Figure 5: cumulative traffic volume
// per number of suspicious/malformed domain names.
func BenchmarkFig5Malicious(b *testing.B) {
	runExperiment(b, "fig5", benchScaleHeavy,
		[]string{"suspicious_traffic_share", "malformed_traffic_share", "invalid_domain_share", "underscore_share"})
}

// BenchmarkFig6ChainLength regenerates Figure 6: the CNAME chain length
// ECDF (>99 % within 6 hops).
func BenchmarkFig6ChainLength(b *testing.B) {
	runExperiment(b, "fig6", benchScaleLight, []string{"p_within_6", "p99_len", "max_len"})
}

// BenchmarkFig7CorrelationRate regenerates Figure 7: hourly correlation
// rate per variant.
func BenchmarkFig7CorrelationRate(b *testing.B) {
	runExperiment(b, "fig7", benchScaleHeavy,
		[]string{"Main_mean_corr", "NoClearUp_mean_corr", "NoLong_mean_corr", "NoRotation_mean_corr"})
}

// BenchmarkFig8TTLDist regenerates Figure 8: TTL ECDFs per record type
// (99 % of A/AAAA below 3600 s, CNAME below 7200 s).
func BenchmarkFig8TTLDist(b *testing.B) {
	runExperiment(b, "fig8", benchScaleLight,
		[]string{"a_le_300", "a_lt_3600", "cname_lt_7200"})
}

// BenchmarkFig9NamesPerIP regenerates Figure 9: names-per-IP ECDF (~88 %
// single-name IPs in a 300 s window).
func BenchmarkFig9NamesPerIP(b *testing.B) {
	runExperiment(b, "fig9", benchScaleLight,
		[]string{"single_name_300s", "single_name_1h"})
}

// BenchmarkCorrelationHeadline regenerates the §4 headline: 81.7 %
// correlation, ~0 loss, bounded write delay, on the full async pipeline.
func BenchmarkCorrelationHeadline(b *testing.B) {
	runExperiment(b, "corr", benchScaleHeavy,
		[]string{"corr_rate", "loss_rate", "write_delay_seconds"})
}

// BenchmarkCoverage regenerates the §4 coverage analysis (95 %).
func BenchmarkCoverage(b *testing.B) {
	runExperiment(b, "coverage", benchScaleHeavy, []string{"coverage", "public_share"})
}

// BenchmarkAccuracyScenarios regenerates the §4 accuracy experiment
// (100 % on distinct IPs, 50 % on a shared IP).
func BenchmarkAccuracyScenarios(b *testing.B) {
	runExperiment(b, "accuracy", benchScaleLight,
		[]string{"scenario1_accuracy", "scenario2_accuracy"})
}

// BenchmarkExactTTL regenerates Appendix A.8: exact-TTL expiry versus Main
// under identical load.
func BenchmarkExactTTL(b *testing.B) {
	runExperiment(b, "exactttl", benchScaleHeavy,
		[]string{"tput_ratio", "exactttl_loss", "main_loss"})
}

// --- DNS fill path (allocation-free FillUp redesign) ---
//
// BenchmarkIngestDNS measures the FillUp hot path: one A-record ingest
// against a populated store (every answer address already present — the
// steady-state overwrite workload of CDN re-announcements). Both the
// benchstat-guarded regression set and the README's before/after numbers
// come from here. The acceptance bar for the fill-path redesign: 0
// allocs/op on the typed A/AAAA hit path in both non-exact and exact-TTL
// modes, and >=2x records/sec over the pre-redesign record-at-a-time
// baseline (~220 ns/op engine, ~350 ns/op exact-TTL, 1 and 3 allocs/op
// respectively).
//
//   - engine: record-at-a-time IngestDNS, Main config.
//   - engine/batch=128: the fill-lane worker path — IngestDNSBatch with
//     per-batch clear-up, stats, and shard-lock amortization.
//   - exact-ttl, exact-ttl/batch=128: the same two paths in Appendix A.8
//     mode, where the typed (value, expiry) entries replaced the
//     "value\x00unixNano" string encoding.
//   - string-answer: the fallback path for records without a typed
//     address (hand-built or legacy captures) — pays the one parse.
//   - parallel/fill-lanes=8: concurrent batched ingest across 8 fill
//     lanes aligned with the store's lane-major split layout.
func BenchmarkIngestDNS(b *testing.B) {
	const n = 4096
	typedRecs := func() []stream.DNSRecord {
		t0 := time.Unix(1653475200, 0)
		recs := make([]stream.DNSRecord, n)
		for i := range recs {
			recs[i] = stream.DNSRecord{
				Timestamp: t0,
				Query:     fmt.Sprintf("svc%d.example", i%512),
				RType:     dnswire.TypeA,
				TTL:       300,
				Addr:      netip.AddrFrom4([4]byte{198, 51, byte(i / 250), byte(i%250 + 1)}),
			}
		}
		return recs
	}

	seed := func(c *core.Correlator, recs []stream.DNSRecord) {
		for i := range recs {
			c.IngestDNS(recs[i])
		}
	}

	single := func(b *testing.B, cfg core.Config) {
		c := core.New(cfg)
		recs := typedRecs()
		seed(c, recs)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.IngestDNS(recs[i%n])
		}
	}
	// makeLaneBatches partitions recs per fill lane (as OfferDNSBatch
	// does) and slices each lane's records into batchSize-record batches —
	// the workload shape the per-lane fill workers drain.
	makeLaneBatches := func(c *core.Correlator, recs []stream.DNSRecord, batchSize int) [][]stream.DNSRecord {
		perLane := make([][]stream.DNSRecord, c.FillLanes())
		for i := range recs {
			l := c.FillLaneFor(&recs[i])
			perLane[l] = append(perLane[l], recs[i])
		}
		var batches [][]stream.DNSRecord
		for _, lr := range perLane {
			for off := 0; off+batchSize <= len(lr); off += batchSize {
				batches = append(batches, lr[off:off+batchSize])
			}
			if rem := len(lr) % batchSize; rem > 0 {
				batches = append(batches, lr[len(lr)-rem:])
			}
		}
		return batches
	}

	// batch models the fill-lane worker: batches are lane-local (the
	// OfferDNSBatch partition routes every record to the lane owning its
	// answer address), so a batch's puts concentrate on that lane's split
	// slice and the shard-lock amortization is the deployed one.
	batch := func(b *testing.B, cfg core.Config) {
		c := core.New(cfg)
		recs := typedRecs()
		seed(c, recs)
		batches := makeLaneBatches(c, recs, 128)
		b.ReportAllocs()
		b.ResetTimer()
		done := 0
		for done < b.N {
			for _, bb := range batches {
				c.IngestDNSBatch(bb)
				done += len(bb)
				if done >= b.N {
					break
				}
			}
		}
	}

	b.Run("engine", func(b *testing.B) { single(b, core.DefaultConfig()) })
	b.Run("engine/batch=128", func(b *testing.B) { batch(b, core.DefaultConfig()) })
	exact := core.ConfigForVariant(core.VariantExactTTL)
	b.Run("exact-ttl", func(b *testing.B) { single(b, exact) })
	b.Run("exact-ttl/batch=128", func(b *testing.B) { batch(b, exact) })

	b.Run("string-answer", func(b *testing.B) {
		c := core.New(core.DefaultConfig())
		recs := typedRecs()
		for i := range recs {
			recs[i].Answer = recs[i].Addr.String()
			recs[i].Addr = netip.Addr{}
		}
		seed(c, recs)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.IngestDNS(recs[i%n])
		}
	})

	b.Run("parallel/fill-lanes=8", func(b *testing.B) {
		cfg := core.DefaultConfig()
		cfg.Lanes = 8
		cfg.FillLanes = 8
		c := core.New(cfg)
		recs := typedRecs()
		seed(c, recs)
		// Lane-local batches, exactly as the batch variant builds them: a
		// concurrent worker always ingests one lane's records, as the
		// deployed per-lane fill workers do.
		batches := makeLaneBatches(c, recs, 128)
		var next atomic.Uint64
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				bb := batches[int(next.Add(1))%len(batches)]
				c.IngestDNSBatch(bb)
				// One pb.Next() per record: account the batch remainder.
				for k := 1; k < len(bb) && pb.Next(); k++ {
				}
			}
		})
	})
}

// BenchmarkFlattenResponse measures wire-message flattening: the step
// between the DNS TCP decoder and the fill queue. The typed-answer change
// removed the per-answer Addr.String() round-trip, and the Into variant
// removes the per-frame slice allocation (the TCP source reuses one
// buffer per connection) — 0 allocs/op.
func BenchmarkFlattenResponse(b *testing.B) {
	msg := &dnswire.Message{
		Header: dnswire.Header{ID: 7, Response: true},
		Questions: []dnswire.Question{
			{Name: "svc.example.com", Type: dnswire.TypeA, Class: dnswire.ClassIN},
		},
		Answers: []dnswire.Record{
			{Name: "svc.example.com", Type: dnswire.TypeCNAME, Class: dnswire.ClassIN, TTL: 300, Target: "edge.cdn.example"},
			{Name: "edge.cdn.example", Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: 60, Addr: netip.AddrFrom4([4]byte{198, 51, 100, 7})},
			{Name: "edge.cdn.example", Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: 60, Addr: netip.AddrFrom4([4]byte{198, 51, 100, 8})},
			{Name: "edge.cdn.example", Type: dnswire.TypeAAAA, Class: dnswire.ClassIN, TTL: 60, Addr: netip.MustParseAddr("2001:db8::7")},
		},
	}
	t0 := time.Unix(1653475200, 0)
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if recs := stream.FlattenResponse(msg, t0); len(recs) != 4 {
				b.Fatal("bad flatten")
			}
		}
	})
	b.Run("into", func(b *testing.B) {
		buf := make([]stream.DNSRecord, 0, 8)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = stream.FlattenResponseInto(buf[:0], msg, t0)
			if len(buf) != 4 {
				b.Fatal("bad flatten")
			}
		}
	})
}

// --- query/serving plane (winstore + queryapi) ---

// benchQueryStore persists `parts` hour-long partitions of one-minute
// windows with `rowsPerWin` distinct attribution keys each — the shape a few
// hours of sealed rollups leave on disk.
func benchQueryStore(b *testing.B, parts, winsPerPart, rowsPerWin int) *winstore.Store {
	b.Helper()
	store, err := winstore.Open(winstore.Config{Dir: b.TempDir(), PartDur: time.Hour})
	if err != nil {
		b.Fatal(err)
	}
	base := time.Unix(1653475200, 0).UTC()
	for p := 0; p < parts; p++ {
		ws := make([]rollup.Window, 0, winsPerPart)
		for i := 0; i < winsPerPart; i++ {
			w := rollup.Window{
				Start: base.Add(time.Duration(p)*time.Hour + time.Duration(i)*time.Minute),
				Dur:   time.Minute,
			}
			for r := 0; r < rowsPerWin; r++ {
				w.Rows = append(w.Rows, rollup.Row{
					Key: rollup.Key{
						Service:  fmt.Sprintf("svc%d.example", r),
						ASN:      uint32(64500 + r%16),
						Category: dbl.Category(r % 6),
					},
					Counters: rollup.Counters{Bytes: 1500 * uint64(r+1), Packets: 10, Flows: 1},
				})
			}
			ws = append(ws, rollup.MergeAll([]rollup.Window{w})) // canonical order, as seals arrive
		}
		if err := store.Add(ws); err != nil {
			b.Fatal(err)
		}
	}
	return store
}

// BenchmarkQueryRange measures the query plane's range-read path over a
// persisted six-hour store (360 one-minute windows × 256 keys): store scan,
// per-interval merge, step bucketing, top-N cut, JSON marshal, HTTP
// handler. Guarded by scripts/benchregress.sh.
//
//   - materialize: every request misses the cache (capacity 1, two
//     alternating parameter tuples) — the full computation.
//   - cached: the steady dashboard-refresh path — same tuple every time, the
//     pre-marshaled body is served straight from the LRU.
func BenchmarkQueryRange(b *testing.B) {
	store := benchQueryStore(b, 6, 60, 256)
	defer store.Close()
	oldest, newest := store.Bounds()
	urlFor := func(step int) string {
		return fmt.Sprintf("/query/services?from=%d&to=%d&step=%d&top=10",
			oldest.Unix(), newest.Unix(), step)
	}

	run := func(b *testing.B, srv *queryapi.Server, urls []string) {
		b.Helper()
		h := srv.Handler()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			req := httptest.NewRequest(http.MethodGet, urls[i%len(urls)], nil)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
			}
		}
	}

	b.Run("materialize", func(b *testing.B) {
		srv, err := queryapi.New(store, queryapi.WithCache(1))
		if err != nil {
			b.Fatal(err)
		}
		// Two tuples through a one-entry cache: every request evicts the
		// other's body, so each iteration pays the full scan+marshal.
		run(b, srv, []string{urlFor(60), urlFor(300)})
	})
	b.Run("cached", func(b *testing.B) {
		srv, err := queryapi.New(store)
		if err != nil {
			b.Fatal(err)
		}
		run(b, srv, []string{urlFor(60)})
	})
}

// BenchmarkCompact measures the store's compaction kernel: collapsing one
// hour of partial seals (60 intervals × 8 partials × 128 rows) into one
// canonical window per interval via the rollup merge laws. This is the
// CPU-bound core of CompactBefore (the segment rewrite around it is I/O).
// Guarded by scripts/benchregress.sh.
func BenchmarkCompact(b *testing.B) {
	base := time.Unix(1653475200, 0).UTC()
	var windows []rollup.Window
	for i := 0; i < 60; i++ {
		for p := 0; p < 8; p++ {
			w := rollup.Window{Start: base.Add(time.Duration(i) * time.Minute), Dur: time.Minute}
			for r := 0; r < 128; r++ {
				w.Rows = append(w.Rows, rollup.Row{
					Key: rollup.Key{
						// Half the keys collide across partials (the merge
						// path), half are partial-local (the append path).
						Service:  fmt.Sprintf("svc%d.example", r+64*(p%2)),
						ASN:      uint32(64500 + r%16),
						Category: dbl.Category(r % 6),
					},
					Counters: rollup.Counters{Bytes: 1500, Packets: 10, Flows: 1},
				})
			}
			windows = append(windows, rollup.MergeAll([]rollup.Window{w}))
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := winstore.CompactWindows(windows)
		if len(out) != 60 {
			b.Fatalf("compacted to %d intervals, want 60", len(out))
		}
	}
}

// snapshotBenchCorrelator builds a correlator holding a realistic store: n
// A-record entries across 512 service names plus a CNAME layer, the shape
// a few hours of resolver traffic leaves behind.
func snapshotBenchCorrelator(n int) *core.Correlator {
	c := core.New(core.DefaultConfig())
	t0 := time.Unix(1653475200, 0)
	for i := 0; i < n; i++ {
		addr := netip.AddrFrom4([4]byte{10, byte(i >> 16), byte(i >> 8), byte(i)})
		c.IngestDNS(stream.DNSRecord{
			Timestamp: t0, Query: fmt.Sprintf("edge%d.cdn.example", i%512),
			RType: dnswire.TypeA, TTL: 300, Addr: addr,
		})
		if i%8 == 0 {
			c.IngestDNS(stream.DNSRecord{
				Timestamp: t0, Query: fmt.Sprintf("svc%d.example", i%512),
				RType: dnswire.TypeCNAME, TTL: 300,
				Answer: fmt.Sprintf("edge%d.cdn.example", i%512),
			})
		}
	}
	return c
}

// BenchmarkSnapshot measures the checkpoint write path: a full store scan
// (lock-striped AppendShard iteration) plus codec encoding, per entry.
// Guarded by scripts/benchregress.sh.
func BenchmarkSnapshot(b *testing.B) {
	const n = 100_000
	c := snapshotBenchCorrelator(n)
	ip, cn := c.StoreSizes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.WriteSnapshot(io.Discard, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(ip+cn), "entries")
}

// BenchmarkRestore measures the boot-time restore path: decode, expiry
// filter, re-intern, re-insert. The fresh correlator per iteration is part
// of the cost a real boot pays. Guarded by scripts/benchregress.sh.
func BenchmarkRestore(b *testing.B) {
	const n = 100_000
	src := snapshotBenchCorrelator(n)
	var buf bytes.Buffer
	if err := src.WriteSnapshot(&buf, 1); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	now := time.Unix(1653475200, 0)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := core.New(core.DefaultConfig())
		st, err := c.Restore(bytes.NewReader(data), now)
		if err != nil {
			b.Fatal(err)
		}
		if st.Entries == 0 {
			b.Fatal("empty restore")
		}
	}
}
