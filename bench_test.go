// Repository-level benchmarks: one per table/figure of the paper's
// evaluation (see DESIGN.md §5 for the experiment index). Each benchmark
// executes the corresponding experiment end to end — workload generation,
// correlation, measurement — and reports the experiment's key metrics as
// custom benchmark outputs, so `go test -bench=. -benchmem` regenerates the
// whole evaluation in one run.
//
// Absolute resource numbers differ from the paper's 128-core testbed by
// construction; the metrics to compare are the *shapes*: correlation-rate
// ordering across variants, NoClearUp state growth, exact-TTL collapse,
// distribution percentiles.
package repro

import (
	"testing"

	"repro/internal/experiments"
)

// benchScale balances fidelity and wall time; heavyweight multi-day
// experiments run at reduced (but still substantial) scale.
const (
	benchScaleHeavy = 0.35
	benchScaleLight = 1.0
)

func runExperiment(b *testing.B, id string, scale float64, metrics []string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	var r *experiments.Result
	for i := 0; i < b.N; i++ {
		r = e.Run(scale)
	}
	if r == nil {
		b.Fatal("no result")
	}
	for _, m := range metrics {
		if v, ok := r.Values[m]; ok {
			b.ReportMetric(v, m)
		} else {
			b.Fatalf("metric %q missing from %s", m, id)
		}
	}
	b.Logf("%s: %s", id, r.Headline)
}

// BenchmarkTable1Config regenerates Table 1 (parameters and storage names).
func BenchmarkTable1Config(b *testing.B) {
	runExperiment(b, "table1", benchScaleLight,
		[]string{"a_clear_up_seconds", "c_clear_up_seconds", "num_split", "chain_limit"})
}

// BenchmarkFig2MainWeek regenerates Figure 2: CPU and memory usage of the
// Main configuration over one simulated week with diurnal traffic.
func BenchmarkFig2MainWeek(b *testing.B) {
	runExperiment(b, "fig2", benchScaleHeavy,
		[]string{"traffic_peak_over_trough", "entries_peak_over_trough", "mean_corr_rate", "loss_rate"})
}

// BenchmarkFig3Variants regenerates Figure 3: CPU and memory for
// Main/NoClearUp/NoLong/NoRotation/NoSplit over one simulated day.
func BenchmarkFig3Variants(b *testing.B) {
	runExperiment(b, "fig3", benchScaleHeavy,
		[]string{"Main_corr", "NoClearUp_corr", "NoLong_corr", "NoRotation_corr", "NoSplit_corr",
			"Main_entries_end", "NoClearUp_entries_end"})
}

// BenchmarkFig4ASAttribution regenerates Figure 4: per-source-AS traffic
// for the two streaming services over a week.
func BenchmarkFig4ASAttribution(b *testing.B) {
	runExperiment(b, "fig4", benchScaleHeavy,
		[]string{"s1_as_count", "s2_as_count", "s1_top1_share", "s2_top2_share"})
}

// BenchmarkFig5Malicious regenerates Figure 5: cumulative traffic volume
// per number of suspicious/malformed domain names.
func BenchmarkFig5Malicious(b *testing.B) {
	runExperiment(b, "fig5", benchScaleHeavy,
		[]string{"suspicious_traffic_share", "malformed_traffic_share", "invalid_domain_share", "underscore_share"})
}

// BenchmarkFig6ChainLength regenerates Figure 6: the CNAME chain length
// ECDF (>99 % within 6 hops).
func BenchmarkFig6ChainLength(b *testing.B) {
	runExperiment(b, "fig6", benchScaleLight, []string{"p_within_6", "p99_len", "max_len"})
}

// BenchmarkFig7CorrelationRate regenerates Figure 7: hourly correlation
// rate per variant.
func BenchmarkFig7CorrelationRate(b *testing.B) {
	runExperiment(b, "fig7", benchScaleHeavy,
		[]string{"Main_mean_corr", "NoClearUp_mean_corr", "NoLong_mean_corr", "NoRotation_mean_corr"})
}

// BenchmarkFig8TTLDist regenerates Figure 8: TTL ECDFs per record type
// (99 % of A/AAAA below 3600 s, CNAME below 7200 s).
func BenchmarkFig8TTLDist(b *testing.B) {
	runExperiment(b, "fig8", benchScaleLight,
		[]string{"a_le_300", "a_lt_3600", "cname_lt_7200"})
}

// BenchmarkFig9NamesPerIP regenerates Figure 9: names-per-IP ECDF (~88 %
// single-name IPs in a 300 s window).
func BenchmarkFig9NamesPerIP(b *testing.B) {
	runExperiment(b, "fig9", benchScaleLight,
		[]string{"single_name_300s", "single_name_1h"})
}

// BenchmarkCorrelationHeadline regenerates the §4 headline: 81.7 %
// correlation, ~0 loss, bounded write delay, on the full async pipeline.
func BenchmarkCorrelationHeadline(b *testing.B) {
	runExperiment(b, "corr", benchScaleHeavy,
		[]string{"corr_rate", "loss_rate", "write_delay_seconds"})
}

// BenchmarkCoverage regenerates the §4 coverage analysis (95 %).
func BenchmarkCoverage(b *testing.B) {
	runExperiment(b, "coverage", benchScaleHeavy, []string{"coverage", "public_share"})
}

// BenchmarkAccuracyScenarios regenerates the §4 accuracy experiment
// (100 % on distinct IPs, 50 % on a shared IP).
func BenchmarkAccuracyScenarios(b *testing.B) {
	runExperiment(b, "accuracy", benchScaleLight,
		[]string{"scenario1_accuracy", "scenario2_accuracy"})
}

// BenchmarkExactTTL regenerates Appendix A.8: exact-TTL expiry versus Main
// under identical load.
func BenchmarkExactTTL(b *testing.B) {
	runExperiment(b, "exactttl", benchScaleHeavy,
		[]string{"tput_ratio", "exactttl_loss", "main_loss"})
}
