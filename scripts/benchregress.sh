#!/usr/bin/env bash
# benchregress.sh — fail when HEAD regresses the hot-path benchmarks
# against a base ref by more than the tolerance.
#
# Usage: scripts/benchregress.sh [base-ref]     (default: origin/main)
#
# Runs BenchmarkCorrelate, BenchmarkSinkWrite, BenchmarkRollupObserve,
# BenchmarkIngestDNS, BenchmarkFlattenResponse, BenchmarkSnapshot,
# BenchmarkRestore, BenchmarkQueryRange, BenchmarkCompact,
# BenchmarkInfluxEncode, BenchmarkSample, BenchmarkUDPIngest,
# BenchmarkCmapTable, and BenchmarkForwardFanout on HEAD and on the base
# ref (in a temporary git
# worktree), prints a benchstat comparison when benchstat is installed, and
# compares per-benchmark median ns/op with a plain awk check: a benchmark
# present in both runs that is more than TOLERANCE (default 1.20 = +20%
# time, ≈ -17% throughput) slower fails the script. Benchmarks that exist
# only on HEAD (newly added) are skipped; a guarded benchmark present on
# the base but MISSING from HEAD fails the script — a deleted or renamed
# guard must be removed from BENCHES deliberately, not silently unguarded.
#
# The HEAD run also snapshots the fill-path and query-plane medians
# (BenchmarkIngestDNS*, BenchmarkFlattenResponse*, BenchmarkQueryRange*,
# BenchmarkCompact*, BenchmarkInfluxEncode, BenchmarkSample*,
# BenchmarkUDPIngest*, BenchmarkCmapTable*, BenchmarkForwardFanout) into
# BENCH_ingest.json at the repo root, so their perf
# trajectory is tracked commit over commit; refresh the checked-in snapshot
# when the numbers move for a reason.
#
# Tunables via environment: BENCHES, COUNT, BENCHTIME, TOLERANCE, SNAPSHOT
# (path of the JSON snapshot; empty disables).
set -euo pipefail

BASE_REF=${1:-origin/main}
BENCHES=${BENCHES:-'BenchmarkCorrelate$|BenchmarkSinkWrite$|BenchmarkRollupObserve$|BenchmarkIngestDNS$|BenchmarkFlattenResponse$|BenchmarkSnapshot$|BenchmarkRestore$|BenchmarkQueryRange$|BenchmarkCompact$|BenchmarkInfluxEncode$|BenchmarkSample$|BenchmarkUDPIngest$|BenchmarkCmapTable$|BenchmarkForwardFanout$'}
COUNT=${COUNT:-6}
BENCHTIME=${BENCHTIME:-300ms}
TOLERANCE=${TOLERANCE:-1.20}
SNAPSHOT=${SNAPSHOT:-BENCH_ingest.json}

repo_root=$(git rev-parse --show-toplevel)
cd "$repo_root"

tmp=$(mktemp -d)
cleanup() {
    git worktree remove --force "$tmp/base" >/dev/null 2>&1 || true
    rm -rf "$tmp"
}
trap cleanup EXIT

run_bench() {
    (cd "$1" && go test -run '^$' -bench "$BENCHES" -benchmem \
        -benchtime "$BENCHTIME" -count "$COUNT" .)
}

echo "==> benchmarks @ HEAD ($(git rev-parse --short HEAD))"
run_bench "$repo_root" | tee "$tmp/head.txt"

echo "==> benchmarks @ $BASE_REF"
git worktree add --quiet --detach "$tmp/base" "$BASE_REF"
run_bench "$tmp/base" | tee "$tmp/base.txt"

if command -v benchstat >/dev/null 2>&1; then
    echo "==> benchstat $BASE_REF → HEAD"
    benchstat "$tmp/base.txt" "$tmp/head.txt" || true
fi

# Median ns/op per benchmark name from a `go test -bench` output file.
medians() {
    awk '/^Benchmark/ {
        for (i = 2; i <= NF; i++) if ($i == "ns/op") {
            n[$1]++
            v[$1 "," n[$1]] = $(i - 1)
        }
    }
    END {
        for (b in n) {
            c = n[b]
            for (i = 1; i <= c; i++) a[i] = v[b "," i]
            # insertion sort; counts are tiny
            for (i = 2; i <= c; i++) {
                x = a[i]
                for (j = i - 1; j >= 1 && a[j] > x; j--) a[j + 1] = a[j]
                a[j + 1] = x
            }
            m = (c % 2) ? a[(c + 1) / 2] : (a[c / 2] + a[c / 2 + 1]) / 2
            print b, m
        }
    }' "$1"
}

medians "$tmp/base.txt" | sort > "$tmp/base.med"
medians "$tmp/head.txt" | sort > "$tmp/head.med"

# Snapshot the fill-path and query-plane benchmarks (median ns/op, B/op,
# allocs/op) from the HEAD run into a JSON file tracked in the repository.
if [ -n "$SNAPSHOT" ]; then
    # Strip the -GOMAXPROCS suffix so the snapshot is machine-independent.
    sed -E 's/^(Benchmark[^ \t]+)-[0-9]+/\1/' "$tmp/head.txt" | \
    awk '/^BenchmarkIngestDNS|^BenchmarkFlattenResponse|^BenchmarkQueryRange|^BenchmarkCompact|^BenchmarkInfluxEncode|^BenchmarkSample|^BenchmarkUDPIngest|^BenchmarkCmapTable|^BenchmarkForwardFanout/ {
        name = $1
        for (i = 2; i <= NF; i++) {
            if ($i == "ns/op")     ns[name]     = ns[name] " " $(i-1)
            if ($i == "B/op")      bop[name]    = bop[name] " " $(i-1)
            if ($i == "allocs/op") allocs[name] = allocs[name] " " $(i-1)
        }
    }
    function median(list,   a, n, i, x, j) {
        n = split(list, a, " ")
        for (i = 2; i <= n; i++) { x = a[i]; for (j = i-1; j >= 1 && a[j]+0 > x+0; j--) a[j+1] = a[j]; a[j+1] = x }
        return (n % 2) ? a[(n+1)/2] : (a[n/2] + a[n/2+1]) / 2
    }
    END {
        for (name in ns)
            printf "%s %s %s %s\n", name, median(ns[name]), median(bop[name]), median(allocs[name])
    }' | sort | awk '
    BEGIN { printf "{\n  \"benchmarks\": {" }
    {
        if (NR > 1) printf ","
        printf "\n    \"%s\": { \"ns_per_op\": %s, \"b_per_op\": %s, \"allocs_per_op\": %s }", $1, $2, $3, $4
    }
    END { printf "\n  }\n}\n" }' > "$SNAPSHOT"
    echo "==> wrote $SNAPSHOT"
fi

echo "==> regression check (tolerance ${TOLERANCE}x median ns/op)"
fail=0
while read -r name base_med; do
    head_med=$(awk -v n="$name" '$1 == n { print $2 }' "$tmp/head.med")
    if [ -z "$head_med" ]; then
        # A guarded benchmark ran on the base but produced nothing on HEAD:
        # it was deleted, renamed, or broken. That silently removes the
        # regression guard, so it fails loudly instead of passing quietly.
        printf 'MISSING %s: present on %s, absent on HEAD\n' "$name" "$BASE_REF"
        fail=1
        continue
    fi
    if awk -v b="$base_med" -v h="$head_med" -v t="$TOLERANCE" \
        'BEGIN { exit !(h > b * t) }'; then
        printf 'REGRESSION %s: %s -> %s ns/op (>%sx)\n' \
            "$name" "$base_med" "$head_med" "$TOLERANCE"
        fail=1
    else
        printf 'ok %s: %s -> %s ns/op\n' "$name" "$base_med" "$head_med"
    fi
done < "$tmp/base.med"

exit $fail
