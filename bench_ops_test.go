package repro

import (
	"testing"

	"repro/internal/influxsink"
	"repro/internal/queue"
)

// BenchmarkInfluxEncode measures the line-protocol encoding of one
// correlated flow — the per-record cost the influx sink adds on top of the
// Write workers' batching. The buffer is reused across iterations, as the
// sink reuses its batch buffer; the encode path must stay allocation-free.
//
//	go test -bench=BenchmarkInfluxEncode -benchmem .
func BenchmarkInfluxEncode(b *testing.B) {
	flows := benchCorrelatedFlows(512)
	buf := make([]byte, 0, 1<<16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = influxsink.AppendPoint(buf[:0], "flowdns", &flows[i%len(flows)])
	}
}

// BenchmarkSample measures the sampler's cost on the queue offer path: the
// disabled case is the historical hot path (one extra branch), the enabled
// cases pay the fill computation and the fixed-point credit accounting.
// Consumers drain concurrently so offers land across the fill range.
//
//	go test -bench=BenchmarkSample -benchmem .
func BenchmarkSample(b *testing.B) {
	run := func(b *testing.B, sampler queue.SamplerConfig) {
		q := queue.New[int](1024)
		q.SetSampler(sampler)
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			buf := make([]int, 0, 256)
			for {
				var ok bool
				if buf, ok = q.TakeBatch(buf[:0], 256, 0); !ok {
					return
				}
				select {
				case <-stop:
					return
				default:
				}
			}
		}()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q.Offer(i)
		}
		b.StopTimer()
		close(stop)
		q.Close()
		<-done
	}
	b.Run("disabled", func(b *testing.B) {
		run(b, queue.SamplerConfig{})
	})
	b.Run("enabled", func(b *testing.B) {
		run(b, queue.SamplerConfig{LowWater: 0.5, HighWater: 0.9, MaxShed: 0.5})
	})
	b.Run("shedding", func(b *testing.B) {
		// Degenerate watermarks pin the sampler at full shed rate whenever
		// the buffer is non-empty: the worst-case accounting cost.
		run(b, queue.SamplerConfig{LowWater: 0, HighWater: 0, MaxShed: 0.5})
	})
}
