// End-to-end rollup verification: the streaming attribution counters must
// agree exactly with the ground-truth counting sink when both consume the
// same pipeline output. Runs under -race in CI (the rollup sink's sharded
// Observe path is exercised by concurrent Write workers).
package repro

import (
	"context"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dbl"
	"repro/internal/rollup"
	"repro/internal/stream"
	"repro/internal/workload"
)

// TestRollupEndToEndMatchesCountingSink drives ≥100k generated flows
// through the deployment wiring — workload generator → NetFlow v9 over a
// real UDP socket → 8 correlation lanes → MultiSink fanning out to the
// counting sink and the attributed rollup sink — and asserts the rollup's
// per-service byte and flow totals equal the counting sink's exactly.
// Counting is the trusted oracle (one map increment per record); any
// rollup bug — a dropped observation, a shard merged twice, a window
// boundary duplicating a flow — breaks exact equality.
func TestRollupEndToEndMatchesCountingSink(t *testing.T) {
	nfConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// The totals comparison needs every datagram delivered; give the
	// kernel queue generous headroom over the backpressure window below.
	if uc, ok := nfConn.(*net.UDPConn); ok {
		uc.SetReadBuffer(4 << 20)
	}

	u := workload.NewUniverse(workload.DefaultConfig())
	table, err := u.BGPTable()
	if err != nil {
		t.Fatal(err)
	}
	table.Freeze()

	counting := core.NewCountingSink()
	engine := rollup.New(time.Minute, 8)
	var sealMu sync.Mutex
	var sealed []rollup.Window
	rsink := rollup.NewSink(engine,
		rollup.WithTable(table),
		rollup.WithBlocklist(u.Blocklist),
		rollup.WithOnSeal(func(ws []rollup.Window) {
			sealMu.Lock()
			sealed = append(sealed, ws...)
			sealMu.Unlock()
		}))

	cfg := core.DefaultConfig()
	cfg.Lanes = 8
	c := core.New(cfg,
		core.WithSink(core.MultiSink{counting, rsink}),
		core.WithSources(stream.NewFlowUDPSource(nfConn)),
	)
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- c.Run(ctx) }()

	// Announce the service universe so most flows correlate.
	g := workload.NewGenerator(u, 1234)
	base := time.Date(2022, 5, 25, 12, 0, 0, 0, time.UTC)
	dns := g.DNSBatch(base, 4000)
	if got := c.OfferDNSBatch(dns); got != len(dns) {
		t.Fatalf("DNS batch: offered %d, accepted %d", len(dns), got)
	}
	deadline := time.After(30 * time.Second)
	for {
		if st := c.Stats(); st.DNSRecords+st.DNSInvalid == uint64(len(dns)) {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("fills stuck: %+v", c.Stats())
		case <-time.After(time.Millisecond):
		}
	}

	// Stream ≥100k flows over the socket. Timestamps advance one second
	// per batch so the run spans several rollup windows. Backpressure
	// keeps the in-flight window small enough that the loopback socket
	// buffer never overflows — the totals comparison needs every sent
	// flow delivered.
	udp, err := net.Dial("udp", nfConn.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	nfSink := stream.NewFlowUDPSink(udp, 7, 10)
	const wantFlows = 100_000
	const maxLag = 1024
	sent := 0
	waitProcessed := func(target uint64) {
		deadline := time.After(60 * time.Second)
		for c.Stats().Flows < target {
			select {
			case <-deadline:
				t.Fatalf("flows stuck at %d of %d: %+v", c.Stats().Flows, sent, c.Stats())
			case <-time.After(200 * time.Microsecond):
			}
		}
	}
	for batch := 0; sent < wantFlows; batch++ {
		ts := base.Add(time.Duration(batch) * time.Second)
		for _, fr := range g.FlowBatch(ts, 2000) {
			if !fr.SrcIP.Is4() || !fr.DstIP.Is4() {
				continue // the v9 standard template here is IPv4
			}
			if err := nfSink.Send(fr); err != nil {
				t.Fatal(err)
			}
			sent++
			if sent%256 == 0 {
				if err := nfSink.Flush(); err != nil {
					t.Fatal(err)
				}
				if sent > maxLag {
					waitProcessed(uint64(sent - maxLag))
				}
			}
		}
	}
	if err := nfSink.Flush(); err != nil {
		t.Fatal(err)
	}
	waitProcessed(uint64(sent))
	if sent < wantFlows {
		t.Fatalf("generated only %d flows, want >= %d", sent, wantFlows)
	}

	udp.Close()
	cancel() // graceful drain: both sinks see every accepted flow, then Close
	if err := <-runDone; err != nil {
		t.Fatalf("Run = %v", err)
	}

	st := c.Stats()
	if st.LookQueue.Dropped != 0 || st.WriteQueue.Dropped != 0 {
		t.Fatalf("internal drops: look=%d write=%d", st.LookQueue.Dropped, st.WriteQueue.Dropped)
	}
	if st.Written != uint64(sent) {
		t.Fatalf("written %d != sent %d", st.Written, sent)
	}

	// The drain ran rsink.Close(), so every window is sealed; merge the
	// OnSeal captures into the run's day view.
	sealMu.Lock()
	defer sealMu.Unlock()
	if len(sealed) == 0 {
		t.Fatal("no rollup windows sealed")
	}
	day := rollup.MergeAll(sealed)

	// Exact equality, per service: bytes and flows from the rollup rows
	// must reproduce the counting sink's maps (including the "" bucket of
	// uncorrelated traffic), and therefore the same grand totals.
	rollBytes := make(map[string]uint64)
	rollFlows := make(map[string]uint64)
	for _, r := range day.Rows {
		rollBytes[r.Service] += r.Bytes
		rollFlows[r.Service] += r.Flows
	}
	if want := counting.Bytes(); !reflect.DeepEqual(rollBytes, want) {
		t.Fatalf("per-service bytes diverge: rollup %d services, counting %d", len(rollBytes), len(want))
	}
	if want := counting.Flows(); !reflect.DeepEqual(rollFlows, want) {
		t.Fatalf("per-service flows diverge: rollup %d services, counting %d", len(rollFlows), len(want))
	}
	total := day.Total()
	if total.Flows != uint64(sent) {
		t.Fatalf("rollup total flows = %d, want %d", total.Flows, sent)
	}

	// Attribution sanity on the same run: correlated traffic resolves to
	// real origin ASes, and the universe's blocklisted services surface
	// with non-benign categories.
	asns := make(map[uint32]bool)
	cats := make(map[dbl.Category]bool)
	for _, r := range day.Rows {
		if r.Service != "" {
			asns[r.ASN] = true
			cats[r.Category] = true
		}
	}
	if len(asns) < 2 {
		t.Fatalf("AS attribution collapsed: %v", asns)
	}
	if len(cats) < 2 {
		t.Fatalf("category attribution collapsed: %v", cats)
	}
}
